//! Content-addressed on-disk cache for generated workloads and derived
//! artifacts.
//!
//! Every `pra sweep` used to regenerate the same `(network, repr, seed)`
//! activation streams from scratch — roughly half the residual wall-clock
//! of a full-fidelity sweep (`bench.json` phase timings). The evaluation
//! is fully deterministic, so those bytes are a pure function of their
//! inputs; this module memoizes them on disk:
//!
//! * **Content addressing** — an entry's file name is derived from a
//!   SHA-256 over everything the payload depends on: the network
//!   descriptor (per-layer geometry), the representation, the Table I/II
//!   profile data and calibration constants, the seed, and
//!   [`GENERATOR_VERSION`]. Changing any input changes the key, so stale
//!   entries are never *read* — they are simply unreachable (and can be
//!   swept by [`Cache::gc_stale`]).
//! * **Integrity** — every entry ends in a fast 64-bit checksum
//!   ([`checksum64`]) over its header and payload; a corrupt or
//!   truncated file fails verification, is removed best-effort, and the
//!   caller regenerates.
//! * **Crash/race safety** — writers assemble the entry in memory, write
//!   it to a unique temp file in the cache directory and `rename` it into
//!   place. Renames are atomic on one filesystem, so parallel sweep jobs
//!   racing on the same key each publish a complete, identical entry and
//!   readers never observe a partial write.
//! * **Deletion safety** — [`Cache::clear`] and [`Cache::gc_stale`] only
//!   ever remove regular files whose names match the cache naming scheme
//!   (`<kind>-<64 hex>.prac[.tmp…]`), checked via `symlink_metadata` so
//!   symlinks are never followed: a misconfigured `PRA_CACHE_DIR`
//!   pointing at a user directory cannot nuke foreign files.
//!
//! The default location is `<target>/pra-cache/`, overridable with the
//! `PRA_CACHE_DIR` environment variable; `PRA_NO_CACHE=1` (or
//! [`set_enabled`]`(false)`, which `pra sweep --no-cache` uses) disables
//! the cache process-wide. See DESIGN.md §9 for the full key-derivation
//! and invalidation rules.

use std::fs;
use std::io::{self, Read};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;

use crate::generator::{ActivationModel, NetworkWorkload, Representation, WINDOW_LSB};
use crate::networks::Network;
use crate::{calibrate, profiles, traces};

/// Version of the workload generator + calibration pipeline. Bump this
/// whenever a code change alters the *bytes* a generated workload
/// contains (sampler, calibration fit, trace format, …): the version is
/// hashed into every workload key, so a bump makes all previous entries
/// unreachable instead of silently serving stale streams.
pub const GENERATOR_VERSION: u32 = 1;

/// Entry kind for cached [`NetworkWorkload`] streams.
pub const WORKLOAD_KIND: &str = "wl";

/// On-disk container format version (header layout, checksum trailer).
const FORMAT_VERSION: u32 = 1;

/// Magic prefix of every cache entry file.
const ENTRY_MAGIC: &[u8; 4] = b"PRAC";

/// File extension of a published cache entry.
const ENTRY_EXT: &str = ".prac";

// ---------------------------------------------------------------------
// SHA-256 (self-contained: the workspace builds offline, with no
// registry crates beyond the shims, so the digest is implemented here).
// ---------------------------------------------------------------------

/// Incremental SHA-256, used for content addressing (via
/// [`KeyHasher`]); entry integrity trailers use [`checksum64`].
pub struct Sha256 {
    state: [u32; 8],
    buf: [u8; 64],
    buf_len: usize,
    total_len: u64,
}

const SHA256_K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

impl Sha256 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Self {
            state: [
                0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
                0x5be0cd19,
            ],
            buf: [0; 64],
            buf_len: 0,
            total_len: 0,
        }
    }

    /// Absorbs `data`.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut rest = data;
        if self.buf_len > 0 {
            let take = rest.len().min(64 - self.buf_len);
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&rest[..take]);
            self.buf_len += take;
            rest = &rest[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
            if rest.is_empty() {
                // The partial buffer absorbed everything; falling
                // through would clobber it with an empty tail.
                return;
            }
        }
        while rest.len() >= 64 {
            let (block, tail) = rest.split_at(64);
            let mut b = [0u8; 64];
            b.copy_from_slice(block);
            self.compress(&b);
            rest = tail;
        }
        self.buf[..rest.len()].copy_from_slice(rest);
        self.buf_len = rest.len();
    }

    /// Finishes and returns the 32-byte digest.
    pub fn finalize(mut self) -> [u8; 32] {
        let bit_len = self.total_len.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        // Manual length trailer (update would recount it).
        self.buf[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buf;
        self.compress(&block);
        let mut out = [0u8; 32];
        for (i, w) in self.state.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&w.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, c) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([c[0], c[1], c[2], c[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16].wrapping_add(s0).wrapping_add(w[i - 7]).wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 =
                h.wrapping_add(s1).wrapping_add(ch).wrapping_add(SHA256_K[i]).wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        for (s, v) in self.state.iter_mut().zip([a, b, c, d, e, f, g, h]) {
            *s = s.wrapping_add(v);
        }
    }
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot SHA-256 of `data`.
pub fn sha256(data: &[u8]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

/// Fast 64-bit integrity checksum: FNV-style multiply-rotate over
/// 8-byte lanes with a SplitMix64 avalanche finish. Content addressing
/// uses SHA-256 (over tiny key descriptors); the entry *trailer* only
/// has to catch corruption and truncation, and a multi-GB/s checksum
/// keeps warm cache loads disk-bound instead of hash-bound (measured:
/// the SHA-256 trailer alone held warm sweeps at ~350 MB/s).
pub fn checksum64(data: &[u8]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut h = 0xCBF2_9CE4_8422_2325u64 ^ (data.len() as u64);
    let mut chunks = data.chunks_exact(8);
    for c in &mut chunks {
        let v = u64::from_le_bytes(c.try_into().unwrap());
        h = (h ^ v).wrapping_mul(PRIME).rotate_left(27);
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut tail = [0u8; 8];
        tail[..rem.len()].copy_from_slice(rem);
        h = (h ^ u64::from_le_bytes(tail)).wrapping_mul(PRIME).rotate_left(27);
    }
    h ^= h >> 30;
    h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^ (h >> 31)
}

/// Lower-case hex of a digest.
fn hex(digest: &[u8]) -> String {
    let mut s = String::with_capacity(digest.len() * 2);
    for b in digest {
        let _ = std::fmt::Write::write_fmt(&mut s, format_args!("{b:02x}"));
    }
    s
}

// ---------------------------------------------------------------------
// Keys
// ---------------------------------------------------------------------

/// A content-address: the SHA-256 (as 64 hex chars) of a canonical
/// serialization of everything the payload depends on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheKey {
    hex: String,
}

impl CacheKey {
    /// The 64-character hex form used in entry file names.
    pub fn hex(&self) -> &str {
        &self.hex
    }
}

/// Builds [`CacheKey`]s from typed fields with unambiguous framing:
/// every field is length- or width-delimited, so distinct field
/// sequences can never collide by concatenation.
pub struct KeyHasher(Sha256);

impl KeyHasher {
    /// Starts a key under a domain label (e.g. `"pra-workload-v1"`);
    /// distinct domains can never produce colliding keys.
    pub fn new(domain: &str) -> Self {
        let mut h = Self(Sha256::new());
        h.str(domain);
        h
    }

    /// Absorbs raw bytes, length-prefixed.
    pub fn bytes(&mut self, b: &[u8]) -> &mut Self {
        self.0.update(&(b.len() as u64).to_le_bytes());
        self.0.update(b);
        self
    }

    /// Absorbs a string, length-prefixed.
    pub fn str(&mut self, s: &str) -> &mut Self {
        self.bytes(s.as_bytes())
    }

    /// Absorbs a `u32`.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.0.update(&v.to_le_bytes());
        self
    }

    /// Absorbs a `u64`.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.0.update(&v.to_le_bytes());
        self
    }

    /// Absorbs an `f64` by bit pattern (exact, including sign of zero).
    pub fn f64(&mut self, v: f64) -> &mut Self {
        self.u64(v.to_bits())
    }

    /// Absorbs a convolutional layer's full geometry — the one
    /// definition shared by every cache kind that keys on layer shape
    /// (workload streams here, traffic tables in `pra-core`), so the
    /// two can never drift apart field by field.
    pub fn conv_spec(&mut self, spec: &pra_tensor::ConvLayerSpec) -> &mut Self {
        self.str(spec.name());
        for d in [
            spec.input.x,
            spec.input.y,
            spec.input.i,
            spec.filter.x,
            spec.filter.y,
            spec.num_filters,
            spec.stride,
            spec.padding,
        ] {
            self.u64(d as u64);
        }
        self
    }

    /// Finishes the key.
    pub fn finish(self) -> CacheKey {
        CacheKey { hex: hex(&self.0.finalize()) }
    }
}

// ---------------------------------------------------------------------
// Enable/disable + telemetry
// ---------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(true);

/// Whether the cache is active: on by default, off when the process
/// called [`set_enabled`]`(false)` or the environment sets
/// `PRA_NO_CACHE` to anything but `0`/empty.
pub fn enabled() -> bool {
    static ENV_DISABLED: OnceLock<bool> = OnceLock::new();
    let env_off = *ENV_DISABLED.get_or_init(
        || matches!(std::env::var("PRA_NO_CACHE"), Ok(v) if !v.is_empty() && v != "0"),
    );
    // relaxed-ok: an isolated on/off flag; no other memory is published
    // through it, and callers tolerate a stale read by design.
    ENABLED.load(Ordering::Relaxed) && !env_off
}

/// Turns the cache on or off process-wide (`pra sweep --no-cache`).
pub fn set_enabled(on: bool) {
    // relaxed-ok: an isolated on/off flag; see `enabled`.
    ENABLED.store(on, Ordering::Relaxed);
}

// ---------------------------------------------------------------------
// The store
// ---------------------------------------------------------------------

/// Resolves the default cache directory: `PRA_CACHE_DIR` when set and
/// non-empty, else `<target>/pra-cache` (the workspace `target/` is
/// located via `CARGO_TARGET_DIR` or by walking up from the running
/// executable, so tests and binaries agree on one directory regardless
/// of their working directory).
pub fn default_dir() -> PathBuf {
    if let Ok(d) = std::env::var("PRA_CACHE_DIR") {
        if !d.is_empty() {
            return PathBuf::from(d);
        }
    }
    if let Ok(d) = std::env::var("CARGO_TARGET_DIR") {
        if !d.is_empty() {
            return PathBuf::from(d).join("pra-cache");
        }
    }
    if let Ok(exe) = std::env::current_exe() {
        for anc in exe.ancestors() {
            if anc.file_name().is_some_and(|n| n == "target") {
                return anc.join("pra-cache");
            }
        }
    }
    PathBuf::from("target").join("pra-cache")
}

/// A handle on one cache directory. Cheap to construct; all operations
/// are stateless over the directory contents.
#[derive(Debug, Clone)]
pub struct Cache {
    dir: PathBuf,
}

/// Summary of a [`Cache::clear`] / [`Cache::gc_stale`] pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClearReport {
    /// Entries (and temp files) removed.
    pub removed: usize,
    /// Bytes those entries occupied.
    pub freed_bytes: u64,
    /// Cache entries deliberately retained (current-generation entries
    /// during a stale-only GC).
    pub kept: usize,
    /// Directory entries left untouched because they are not the
    /// cache's to manage: names outside the naming scheme, non-regular
    /// files (symlinks are never followed, let alone removed), or
    /// entries whose removal failed.
    pub skipped: usize,
}

/// Per-kind entry statistics for [`Cache::stats`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KindStats {
    /// Entry kind (e.g. `"wl"`, `"tr"`).
    pub kind: String,
    /// Published entries of this kind.
    pub entries: usize,
    /// Their total size in bytes.
    pub bytes: u64,
    /// Distinct embedded versions and how many entries carry each,
    /// ascending — lets `pra cache stats` flag stale generations.
    pub versions: Vec<(u32, usize)>,
}

/// What [`Cache::stats`] reports about a cache directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheStats {
    /// The directory inspected.
    pub dir: PathBuf,
    /// Published entries across all kinds.
    pub entries: usize,
    /// Their total size in bytes.
    pub bytes: u64,
    /// Leftover temp files (crashed or in-flight writers).
    pub temps: usize,
    /// Directory entries that do not belong to the cache.
    pub foreign: usize,
    /// Per-kind breakdown, sorted by kind.
    pub kinds: Vec<KindStats>,
}

/// `true` when `kind` is a legal entry kind: 1–16 lower-case ASCII
/// letters or digits (it appears verbatim in file names).
fn valid_kind(kind: &str) -> bool {
    (1..=16).contains(&kind.len())
        && kind.bytes().all(|b| b.is_ascii_lowercase() || b.is_ascii_digit())
}

/// Parses a cache entry file name. Returns `(kind, is_temp)` when the
/// name matches the scheme `<kind>-<64 hex>.prac` (published) or
/// `<kind>-<64 hex>.prac.tmp<digits/dots>` (writer temp file); anything
/// else is foreign and must never be touched.
fn parse_entry_name(name: &str) -> Option<(&str, bool)> {
    let (kind, rest) = name.split_once('-')?;
    if !valid_kind(kind) {
        return None;
    }
    let hex_part = rest.get(..64)?;
    if !hex_part.bytes().all(|b| matches!(b, b'0'..=b'9' | b'a'..=b'f')) {
        return None;
    }
    let suffix = &rest[64..];
    if suffix == ENTRY_EXT {
        return Some((kind, false));
    }
    let tmp = suffix.strip_prefix(ENTRY_EXT)?.strip_prefix(".tmp")?;
    (!tmp.is_empty() && tmp.bytes().all(|b| b.is_ascii_digit() || b == b'.'))
        .then_some((kind, true))
}

/// Entry header as parsed from disk (without the payload).
struct EntryHeader {
    version: u32,
    kind_len: usize,
    payload_len: u64,
}

/// Fixed-size prefix before the kind bytes: magic + format version +
/// entry version + kind length.
const HEADER_FIXED: usize = 4 + 4 + 4 + 1;

fn parse_header(bytes: &[u8]) -> Option<EntryHeader> {
    if bytes.len() < HEADER_FIXED || &bytes[..4] != ENTRY_MAGIC {
        return None;
    }
    let rd32 = |o: usize| u32::from_le_bytes(bytes[o..o + 4].try_into().unwrap());
    if rd32(4) != FORMAT_VERSION {
        return None;
    }
    let version = rd32(8);
    let kind_len = bytes[12] as usize;
    if !(1..=16).contains(&kind_len) || bytes.len() < HEADER_FIXED + kind_len + 8 {
        return None;
    }
    let plo = HEADER_FIXED + kind_len;
    let payload_len = u64::from_le_bytes(bytes[plo..plo + 8].try_into().unwrap());
    Some(EntryHeader { version, kind_len, payload_len })
}

static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

impl Cache {
    /// A cache rooted at `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self { dir: dir.into() }
    }

    /// The cache at [`default_dir`].
    pub fn at_default() -> Self {
        Self::new(default_dir())
    }

    /// The directory this cache reads and writes.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn entry_path(&self, kind: &str, key: &CacheKey) -> PathBuf {
        self.dir.join(format!("{kind}-{}{ENTRY_EXT}", key.hex()))
    }

    /// Publishes `payload` under `(kind, key)`, embedding `version` (the
    /// caller's artifact version, e.g. [`GENERATOR_VERSION`]) in the
    /// header and a [`checksum64`] in the trailer. Atomic: the entry
    /// is assembled in a temp file and renamed into place, so concurrent
    /// writers on one key are safe and readers never see partial data.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; callers treat storing as
    /// best-effort.
    ///
    /// # Panics
    ///
    /// Panics if `kind` is not a legal kind (see the naming scheme).
    pub fn store(
        &self,
        kind: &str,
        version: u32,
        key: &CacheKey,
        payload: &[u8],
    ) -> io::Result<PathBuf> {
        assert!(valid_kind(kind), "invalid cache kind {kind:?}");
        fs::create_dir_all(&self.dir)?;
        let mut body = Vec::with_capacity(HEADER_FIXED + kind.len() + 8 + payload.len() + 8);
        body.extend_from_slice(ENTRY_MAGIC);
        body.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        body.extend_from_slice(&version.to_le_bytes());
        body.push(kind.len() as u8);
        body.extend_from_slice(kind.as_bytes());
        body.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        body.extend_from_slice(payload);
        let digest = checksum64(&body);
        body.extend_from_slice(&digest.to_le_bytes());

        let final_path = self.entry_path(kind, key);
        let tmp_path = self.dir.join(format!(
            "{kind}-{}{ENTRY_EXT}.tmp{}.{}",
            key.hex(),
            std::process::id(),
            // relaxed-ok: the counter only needs to hand out distinct
            // temp-file suffixes within this process.
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed),
        ));
        fs::write(&tmp_path, &body)?;
        match fs::rename(&tmp_path, &final_path) {
            Ok(()) => Ok(final_path),
            Err(e) => {
                let _ = fs::remove_file(&tmp_path);
                Err(e)
            }
        }
    }

    /// Loads the payload stored under `(kind, key)`, verifying format,
    /// kind, embedded version and checksum. Any mismatch (corruption,
    /// truncation, version drift) removes the entry best-effort and
    /// returns `None` so the caller regenerates.
    pub fn load(&self, kind: &str, version: u32, key: &CacheKey) -> Option<Vec<u8>> {
        let path = self.entry_path(kind, key);
        let mut bytes = fs::read(&path).ok()?;
        // Chaos fault sites (DESIGN.md §12): mangle the entry exactly
        // as silent disk corruption or a torn write would, *after* the
        // read and *before* verification — the integrity trailer must
        // catch it and the regenerate-on-mismatch path below must heal
        // it. Compiled down to one atomic load when chaos is unarmed.
        if pra_chaos::armed() {
            let _ = pra_chaos::mangle(pra_chaos::Site::CacheCorrupt, &mut bytes);
            let _ = pra_chaos::mangle(pra_chaos::Site::CacheTruncate, &mut bytes);
        }
        match Self::verify(bytes, kind, version) {
            Some(payload) => Some(payload),
            None => {
                self.remove_entry(&path);
                None
            }
        }
    }

    /// Full entry verification; on success returns the payload in the
    /// entry's own allocation (trailer truncated, header drained) — no
    /// second tens-of-MB copy on the warm-load hot path.
    fn verify(mut bytes: Vec<u8>, kind: &str, version: u32) -> Option<Vec<u8>> {
        let h = parse_header(&bytes)?;
        if h.version != version {
            return None;
        }
        let kind_bytes = &bytes[HEADER_FIXED..HEADER_FIXED + h.kind_len];
        if kind_bytes != kind.as_bytes() {
            return None;
        }
        let payload_start = HEADER_FIXED + h.kind_len + 8;
        let payload_len = usize::try_from(h.payload_len).ok()?;
        let checksum_start = payload_start.checked_add(payload_len)?;
        if bytes.len() != checksum_start + 8 {
            return None;
        }
        let expect = u64::from_le_bytes(bytes[checksum_start..].try_into().ok()?);
        if checksum64(&bytes[..checksum_start]) != expect {
            return None;
        }
        bytes.truncate(checksum_start);
        bytes.drain(..payload_start);
        Some(bytes)
    }

    /// Removes a file we positively identified as a cache entry —
    /// refuses anything whose name is foreign or that is not a regular
    /// file (checked without following symlinks).
    fn remove_entry(&self, path: &Path) {
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else { return };
        if parse_entry_name(name).is_none() {
            return;
        }
        match fs::symlink_metadata(path) {
            Ok(m) if m.is_file() => {
                let _ = fs::remove_file(path);
            }
            _ => {}
        }
    }

    /// Scans the directory and reports size/kind/version statistics.
    /// A missing directory reads as empty.
    pub fn stats(&self) -> CacheStats {
        let mut stats = CacheStats {
            dir: self.dir.clone(),
            entries: 0,
            bytes: 0,
            temps: 0,
            foreign: 0,
            kinds: Vec::new(),
        };
        let Ok(rd) = fs::read_dir(&self.dir) else { return stats };
        for entry in rd.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else {
                stats.foreign += 1;
                continue;
            };
            let Ok(meta) = fs::symlink_metadata(entry.path()) else { continue };
            match parse_entry_name(name) {
                Some((_, true)) if meta.is_file() => stats.temps += 1,
                Some((kind, false)) if meta.is_file() => {
                    stats.entries += 1;
                    stats.bytes += meta.len();
                    let version = read_entry_version(&entry.path());
                    let ks = match stats.kinds.iter_mut().find(|k| k.kind == kind) {
                        Some(ks) => ks,
                        None => {
                            stats.kinds.push(KindStats {
                                kind: kind.to_string(),
                                entries: 0,
                                bytes: 0,
                                versions: Vec::new(),
                            });
                            stats.kinds.last_mut().unwrap()
                        }
                    };
                    ks.entries += 1;
                    ks.bytes += meta.len();
                    if let Some(v) = version {
                        match ks.versions.iter_mut().find(|(ver, _)| *ver == v) {
                            Some((_, n)) => *n += 1,
                            None => ks.versions.push((v, 1)),
                        }
                    }
                }
                _ => stats.foreign += 1,
            }
        }
        stats.kinds.sort_by(|a, b| a.kind.cmp(&b.kind));
        for ks in &mut stats.kinds {
            ks.versions.sort_unstable();
        }
        stats
    }

    /// Removes every cache entry and temp file in the directory.
    /// Foreign files, directories and symlinks are counted as skipped
    /// and left untouched; the directory itself is kept.
    ///
    /// # Errors
    ///
    /// Propagates an error only from reading the directory; individual
    /// removals are best-effort.
    pub fn clear(&self) -> io::Result<ClearReport> {
        self.remove_matching(|_, _, _| true)
    }

    /// [`Cache::clear`] restricted to one entry kind (`pra cache clear
    /// --kind …`): entries and temps whose tag differs are counted as
    /// kept, everything else follows the usual safety rules.
    ///
    /// # Errors
    ///
    /// Propagates an error only from reading the directory.
    pub fn clear_kind(&self, kind: &str) -> io::Result<ClearReport> {
        self.remove_matching(|entry_kind, _, _| entry_kind == kind)
    }

    /// One-pass stale-generation GC: for every `(kind, current
    /// version)` pair in `current`, removes that kind's published
    /// entries whose embedded version differs, plus its abandoned temp
    /// files older than one hour (younger temps may belong to a live
    /// writer). Entries of unlisted kinds and current-version entries
    /// are counted as kept. Same safety rules as [`Cache::clear`].
    ///
    /// # Errors
    ///
    /// Propagates an error only from reading the directory.
    pub fn gc_stale(&self, current: &[(&str, u32)]) -> io::Result<ClearReport> {
        let now = std::time::SystemTime::now();
        self.remove_matching(|entry_kind, is_temp, path| {
            let Some(&(_, version)) = current.iter().find(|(k, _)| *k == entry_kind) else {
                return false;
            };
            if is_temp {
                let age = fs::symlink_metadata(path)
                    .and_then(|m| m.modified())
                    .ok()
                    .and_then(|m| now.duration_since(m).ok());
                return age.is_some_and(|a| a.as_secs() > 3600);
            }
            read_entry_version(path) != Some(version)
        })
    }

    /// Shared guarded-deletion pass: `condemn(kind, is_temp, path)`
    /// decides which *scheme-matching regular files* go; retained
    /// entries count as kept, and everything that is not the cache's
    /// to manage is skipped by construction.
    fn remove_matching(
        &self,
        condemn: impl Fn(&str, bool, &Path) -> bool,
    ) -> io::Result<ClearReport> {
        let mut report = ClearReport::default();
        let rd = match fs::read_dir(&self.dir) {
            Ok(rd) => rd,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(report),
            Err(e) => return Err(e),
        };
        for entry in rd.flatten() {
            let name = entry.file_name();
            let path = entry.path();
            let matched = name.to_str().and_then(parse_entry_name);
            let Some((kind, is_temp)) = matched else {
                report.skipped += 1;
                continue;
            };
            // symlink_metadata never follows links: a symlink that
            // happens to be named like an entry is skipped, not its
            // target removed.
            let Ok(meta) = fs::symlink_metadata(&path) else {
                report.skipped += 1;
                continue;
            };
            if !meta.is_file() {
                report.skipped += 1;
                continue;
            }
            if !condemn(kind, is_temp, &path) {
                report.kept += 1;
                continue;
            }
            if fs::remove_file(&path).is_ok() {
                report.removed += 1;
                report.freed_bytes += meta.len();
            } else {
                report.skipped += 1;
            }
        }
        Ok(report)
    }
}

/// Reads just the embedded version of an entry file (for stats/GC).
fn read_entry_version(path: &Path) -> Option<u32> {
    let mut f = fs::File::open(path).ok()?;
    let mut head = [0u8; HEADER_FIXED + 16 + 8];
    let mut got = 0;
    while got < head.len() {
        match f.read(&mut head[got..]) {
            Ok(0) => break,
            Ok(n) => got += n,
            Err(_) => return None,
        }
    }
    parse_header(&head[..got]).map(|h| h.version)
}

// ---------------------------------------------------------------------
// Workload entries
// ---------------------------------------------------------------------

/// Outcome of a cache-aware workload build, reported per sweep job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// The workload was loaded from the cache; generation was skipped.
    Hit,
    /// No valid entry existed; the workload was generated and stored.
    Miss,
    /// The cache was disabled (`--no-cache` / `PRA_NO_CACHE`).
    Disabled,
}

impl CacheOutcome {
    /// Stable label for reports: `"hit"`, `"miss"` or `"off"`.
    pub fn label(&self) -> &'static str {
        match self {
            CacheOutcome::Hit => "hit",
            CacheOutcome::Miss => "miss",
            CacheOutcome::Disabled => "off",
        }
    }
}

/// Compile-time fingerprint of the generation pipeline's own sources,
/// mixed into every workload key: even when a code change that alters
/// generated bytes forgets the [`GENERATOR_VERSION`] bump, entries
/// built by other source versions become unreachable *locally*, not
/// just in CI (whose actions/cache key hashes the same sources). The
/// price is over-invalidation on comment-only edits — a 3 s cold
/// sweep, chosen over silently serving stale streams.
fn source_fingerprint() -> u64 {
    static FP: OnceLock<u64> = OnceLock::new();
    *FP.get_or_init(|| {
        let sources: [&str; 6] = [
            include_str!("cache.rs"),
            include_str!("calibrate.rs"),
            include_str!("generator.rs"),
            include_str!("networks.rs"),
            include_str!("profiles.rs"),
            include_str!("traces.rs"),
        ];
        let mut h = 0u64;
        for s in sources {
            h = checksum64(s.as_bytes()) ^ h.rotate_left(9);
        }
        h
    })
}

/// The content-address of the calibrated workload for
/// `(network, repr, seed)` under the current [`GENERATOR_VERSION`].
pub fn workload_key(network: Network, repr: Representation, seed: u64) -> CacheKey {
    workload_key_for_version(network, repr, seed, GENERATOR_VERSION)
}

/// [`workload_key`] under an explicit generator version — exposed so
/// tests can pin the version-bump invalidation property.
pub fn workload_key_for_version(
    network: Network,
    repr: Representation,
    seed: u64,
    version: u32,
) -> CacheKey {
    let mut h = KeyHasher::new("pra-workload-v1");
    h.u32(version);
    h.u64(source_fingerprint());
    // Network descriptor: name plus full per-layer geometry, so an
    // edited layer table can never alias a previous network shape.
    h.str(network.name());
    let specs = network.conv_layers();
    h.u64(specs.len() as u64);
    for spec in &specs {
        h.conv_spec(spec);
    }
    // Profile/calibration inputs: Table II precisions, the Table I row
    // the model is fitted against, and every calibration constant. The
    // fitted ActivationModel is a deterministic function of these, so
    // hashing the inputs (rather than the fit) lets a warm hit skip
    // calibration entirely.
    let precs = profiles::precisions(network);
    h.u64(precs.len() as u64);
    for &p in precs {
        h.u32(p as u32);
    }
    let t1 = profiles::table1(network);
    for v in [t1.fp16_all, t1.fp16_nz, t1.q8_all, t1.q8_nz] {
        h.f64(v);
    }
    for v in [
        calibrate::SUFFIX_DENSITY,
        calibrate::OUTLIER_PROB,
        calibrate::DENSE_PROB,
        calibrate::HEAVY_SHARE,
        calibrate::DENSE_PROB_Q8,
        calibrate::HEAVY_SHARE_Q8,
    ] {
        h.f64(v);
    }
    h.u64(calibrate::CALIBRATION_SEED);
    h.u64(calibrate::CALIBRATION_SAMPLES as u64);
    h.u32(WINDOW_LSB as u32);
    h.u32(repr.bits());
    h.u64(seed);
    h.finish()
}

/// Serializes and publishes `workload` under `key`: the six activation-
/// model parameters followed by the `PRAT` trace (the `traces` module's
/// serialization), wrapped in the checksummed entry container.
///
/// # Errors
///
/// Propagates filesystem errors (callers store best-effort).
pub fn store_workload(
    cache: &Cache,
    key: &CacheKey,
    workload: &NetworkWorkload,
) -> io::Result<PathBuf> {
    let mut payload = Vec::with_capacity(
        48 + workload.layers.iter().map(|l| 64 + 2 * l.neurons.as_slice().len()).sum::<usize>(),
    );
    for v in [
        workload.model.zero_frac,
        workload.model.sigma,
        workload.model.suffix_density,
        workload.model.outlier_prob,
        workload.model.dense_prob,
        workload.model.heavy_share,
    ] {
        payload.extend_from_slice(&v.to_le_bytes());
    }
    traces::write_trace(&mut payload, workload)?;
    cache.store(WORKLOAD_KIND, GENERATOR_VERSION, key, &payload)
}

/// Loads the workload stored under `key`, rebuilding layer geometry and
/// precision windows from `network` (exactly as generation would) and
/// restoring the stored activation model. Returns `None` on any
/// mismatch — wrong representation, foreign geometry, short payload —
/// and the caller regenerates.
pub fn load_workload(
    cache: &Cache,
    key: &CacheKey,
    network: Network,
    repr: Representation,
) -> Option<NetworkWorkload> {
    let payload = cache.load(WORKLOAD_KIND, GENERATOR_VERSION, key)?;
    if payload.len() < 48 {
        return None;
    }
    let mut vals = [0f64; 6];
    for (i, v) in vals.iter_mut().enumerate() {
        *v = f64::from_le_bytes(payload[8 * i..8 * i + 8].try_into().unwrap());
    }
    let mut workload = traces::workload_from_trace(&payload[48..], network).ok()?;
    if workload.repr != repr {
        return None;
    }
    workload.model = ActivationModel {
        zero_frac: vals[0],
        sigma: vals[1],
        suffix_density: vals[2],
        outlier_prob: vals[3],
        dense_prob: vals[4],
        heavy_share: vals[5],
    };
    Some(workload)
}

// ---------------------------------------------------------------------
// The tiered artifact store
// ---------------------------------------------------------------------

/// The artifact kinds the tiered store can persist (DESIGN.md §15).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArtifactKind {
    /// Generated workload streams ([`WORKLOAD_KIND`], `"wl"`).
    Workload,
    /// Per-layer NM/SB traffic tables (`"tr"`, owned by `pra-core`).
    Traffic,
    /// Encoded mask buffers + warm schedule memos (`"en"`, owned by
    /// `pra-core`'s `artifact` module).
    Encoded,
}

impl ArtifactKind {
    /// Every kind, in stable display order.
    pub const ALL: [ArtifactKind; 3] =
        [ArtifactKind::Workload, ArtifactKind::Traffic, ArtifactKind::Encoded];

    /// The on-disk entry-name tag (`<tag>-<64 hex>.prac`).
    pub fn tag(self) -> &'static str {
        match self {
            ArtifactKind::Workload => WORKLOAD_KIND,
            ArtifactKind::Traffic => "tr",
            ArtifactKind::Encoded => "en",
        }
    }

    /// The human-facing name used by `pra cache --kind`.
    pub fn name(self) -> &'static str {
        match self {
            ArtifactKind::Workload => "workload",
            ArtifactKind::Traffic => "traffic",
            ArtifactKind::Encoded => "encoded",
        }
    }

    /// Parses either the human name (`"workload"`) or the entry tag
    /// (`"wl"`).
    pub fn parse(s: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|k| k.name() == s || k.tag() == s)
    }
}

/// One typed handle over the content-addressed artifact cache: which
/// directory (if any) backs it, and which [`ArtifactKind`] tiers may
/// read and write it. This is the single construction path every
/// cache-aware consumer (sweep, serve, router) goes through — the old
/// per-call `use_cache: bool` + `cache_dir: Option<PathBuf>` plumbing
/// and the `build`/`build_uncached` twin entry points collapse into
/// one value that is built once and passed along.
///
/// ```
/// use pra_workloads::cache::{ArtifactKind, ArtifactStore};
/// // Disk-backed, workload + encoded tiers only:
/// let store = ArtifactStore::new("/tmp/pra-cache")
///     .tier(ArtifactKind::Workload)
///     .tier(ArtifactKind::Encoded);
/// assert!(store.tier_enabled(ArtifactKind::Workload));
/// assert!(!store.tier_enabled(ArtifactKind::Traffic));
/// // The escape hatch: never touch disk at all.
/// let off = ArtifactStore::at_default().no_disk();
/// assert!(off.cache_for(ArtifactKind::Workload).is_none());
/// ```
#[derive(Debug, Clone)]
pub struct ArtifactStore {
    cache: Option<Cache>,
    tiers: [bool; 3],
}

impl ArtifactStore {
    /// A store rooted at `dir` with **no** tiers enabled yet — chain
    /// [`ArtifactStore::tier`] to opt kinds in.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self { cache: Some(Cache::new(dir)), tiers: [false; 3] }
    }

    /// The default store: rooted at [`default_dir`] with every tier
    /// enabled (what `pra sweep` / `pra serve` use unless told
    /// otherwise).
    pub fn at_default() -> Self {
        Self { cache: Some(Cache::at_default()), tiers: [true; 3] }
    }

    /// Enables one artifact tier.
    pub fn tier(mut self, kind: ArtifactKind) -> Self {
        self.tiers[kind as usize] = true;
        self
    }

    /// Drops the disk entirely: every probe misses and every publish is
    /// a no-op (`pra sweep --no-cache`, hermetic tests).
    pub fn no_disk(mut self) -> Self {
        self.cache = None;
        self
    }

    /// The backing directory, `None` for a [`ArtifactStore::no_disk`]
    /// store.
    pub fn dir(&self) -> Option<&Path> {
        self.cache.as_ref().map(Cache::dir)
    }

    /// Whether `kind`'s tier was enabled (regardless of disk presence).
    pub fn tier_enabled(&self, kind: ArtifactKind) -> bool {
        self.tiers[kind as usize]
    }

    /// The single probe point: the backing [`Cache`] for `kind`, or
    /// `None` when the store has no disk, the tier is off, or the cache
    /// is disabled process-wide ([`enabled`], `PRA_NO_CACHE`). Callers
    /// that get `None` generate; callers that get `Some` consult disk
    /// first and publish after a miss.
    pub fn cache_for(&self, kind: ArtifactKind) -> Option<&Cache> {
        (self.tiers[kind as usize] && enabled()).then_some(self.cache.as_ref()?)
    }

    /// Cache-aware workload build: consult the workload tier first,
    /// generate and publish on a miss. The returned workload is
    /// bit-identical either way (round-trip pinned by
    /// `tests/cache_roundtrip.rs`).
    pub fn workload(
        &self,
        network: Network,
        repr: Representation,
        seed: u64,
    ) -> (NetworkWorkload, CacheOutcome) {
        let Some(cache) = self.cache_for(ArtifactKind::Workload) else {
            return (NetworkWorkload::build(network, repr, seed), CacheOutcome::Disabled);
        };
        let key = workload_key(network, repr, seed);
        if let Some(w) = load_workload(cache, &key, network, repr) {
            return (w, CacheOutcome::Hit);
        }
        let w = NetworkWorkload::build(network, repr, seed);
        // Best-effort: a read-only cache directory must not fail a build.
        let _ = store_workload(cache, &key, &w);
        (w, CacheOutcome::Miss)
    }

    /// Copies every published entry of `src` into this store's
    /// directory — the shard warm-up path: a fresh shard inherits the
    /// donor's artifacts as a file copy instead of re-encoding. Only
    /// scheme-matching regular files are copied (temps, symlinks and
    /// foreign files are ignored, mirroring the deletion rules), each
    /// through the same atomic temp + rename publish as
    /// [`Cache::store`]. Returns how many entries were copied; a
    /// diskless source or destination copies nothing.
    ///
    /// # Errors
    ///
    /// Propagates directory-read and copy failures.
    pub fn seed_entries_from(&self, src: &ArtifactStore) -> io::Result<usize> {
        let (Some(dst), Some(src)) = (self.cache.as_ref(), src.cache.as_ref()) else {
            return Ok(0);
        };
        let rd = match fs::read_dir(src.dir()) {
            Ok(rd) => rd,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(0),
            Err(e) => return Err(e),
        };
        fs::create_dir_all(dst.dir())?;
        let mut copied = 0;
        for entry in rd.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if !matches!(parse_entry_name(name), Some((_, false))) {
                continue;
            }
            let from = entry.path();
            let Ok(meta) = fs::symlink_metadata(&from) else { continue };
            if !meta.is_file() {
                continue;
            }
            let to = dst.dir().join(name);
            if to == from {
                continue;
            }
            let tmp = dst.dir().join(format!(
                "{name}.tmp{}.{}",
                std::process::id(),
                // relaxed-ok: distinct temp-file suffixes only.
                TMP_COUNTER.fetch_add(1, Ordering::Relaxed),
            ));
            fs::copy(&from, &tmp)?;
            match fs::rename(&tmp, &to) {
                Ok(()) => copied += 1,
                Err(e) => {
                    let _ = fs::remove_file(&tmp);
                    return Err(e);
                }
            }
        }
        Ok(copied)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sha256_matches_known_vectors() {
        // FIPS 180-2 test vectors.
        assert_eq!(
            hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            hex(&sha256(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
        // Exercise the multi-block and buffered paths: one million 'a's
        // fed in deliberately awkward 97-byte chunks.
        let mut h = Sha256::new();
        let chunk = [b'a'; 97];
        let mut remaining = 1_000_000usize;
        while remaining > 0 {
            let n = remaining.min(chunk.len());
            h.update(&chunk[..n]);
            remaining -= n;
        }
        assert_eq!(
            hex(&h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
        // Byte-at-a-time must agree with one-shot hashing.
        let mut h = Sha256::new();
        for b in b"abc" {
            h.update(&[*b]);
        }
        assert_eq!(h.finalize(), sha256(b"abc"));
    }

    #[test]
    fn checksum64_detects_flips_truncation_and_extension() {
        let data: Vec<u8> = (0..1000u32).flat_map(|v| v.to_le_bytes()).collect();
        let base = checksum64(&data);
        assert_eq!(base, checksum64(&data), "deterministic");
        for at in [0, 7, 8, 500, data.len() - 1] {
            let mut tampered = data.clone();
            tampered[at] ^= 0x10;
            assert_ne!(checksum64(&tampered), base, "flip at {at} must change the sum");
        }
        assert_ne!(checksum64(&data[..data.len() - 1]), base, "truncation changes the sum");
        let mut extended = data.clone();
        extended.push(0);
        // Length is mixed in, so zero-extension cannot collide either.
        assert_ne!(checksum64(&extended), base);
        assert_ne!(checksum64(b""), checksum64(&[0u8; 8]));
    }

    #[test]
    fn key_hasher_framing_prevents_concatenation_collisions() {
        let mut a = KeyHasher::new("t");
        a.str("ab").str("c");
        let mut b = KeyHasher::new("t");
        b.str("a").str("bc");
        assert_ne!(a.finish(), b.finish());
        let mut c = KeyHasher::new("t1");
        c.str("x");
        let mut d = KeyHasher::new("t");
        d.str("1x");
        assert_ne!(c.finish(), d.finish());
    }

    #[test]
    fn entry_name_scheme_is_strict() {
        let hex64 = "0".repeat(64);
        assert_eq!(parse_entry_name(&format!("wl-{hex64}.prac")), Some(("wl", false)));
        assert_eq!(parse_entry_name(&format!("wl-{hex64}.prac.tmp12.3")), Some(("wl", true)));
        for bad in [
            "notes.txt".to_string(),
            format!("wl-{hex64}.prac.bak"),
            format!("WL-{hex64}.prac"),
            format!("wl-{}.prac", "0".repeat(63)),
            format!("wl-{}.prac", "g".repeat(64)),
            format!("wl-{hex64}.prac.tmp"),
            format!("wl-{hex64}.prac.tmpx"),
            format!("-{hex64}.prac"),
        ] {
            assert_eq!(parse_entry_name(&bad), None, "{bad} must not match");
        }
    }

    #[test]
    fn workload_keys_separate_every_input() {
        let base = workload_key(Network::AlexNet, Representation::Fixed16, 7);
        assert_eq!(base.hex().len(), 64);
        assert_eq!(base, workload_key(Network::AlexNet, Representation::Fixed16, 7));
        assert_ne!(base, workload_key(Network::NiN, Representation::Fixed16, 7));
        assert_ne!(base, workload_key(Network::AlexNet, Representation::Quant8, 7));
        assert_ne!(base, workload_key(Network::AlexNet, Representation::Fixed16, 8));
        assert_ne!(
            base,
            workload_key_for_version(
                Network::AlexNet,
                Representation::Fixed16,
                7,
                GENERATOR_VERSION + 1
            )
        );
    }
}
