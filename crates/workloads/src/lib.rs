//! Workload substrate for the Pragmatic (MICRO 2017) reproduction.
//!
//! The paper evaluates six ImageNet networks — AlexNet, NiN, GoogLeNet,
//! VGG-M, VGG-S and VGG-19 — on their convolutional layers (§VI-A). This
//! crate provides:
//!
//! * [`networks`] — the convolutional-layer geometry of all six networks.
//! * [`profiles`] — the per-layer neuron precisions of Table II and the
//!   essential-bit-content measurements of Table I (used as calibration
//!   targets and as the paper-side of every paper-vs-measured report).
//! * [`generator`] — seeded synthetic activation streams: rectified
//!   half-Gaussian magnitudes inside each layer's precision window, plus
//!   suffix-noise and prefix-outlier bits that software trimming (§V-F)
//!   removes.
//! * [`calibrate`] — fits the generator so the measured essential-bit
//!   content reproduces Table I (see DESIGN.md §2 for why this substitution
//!   preserves the paper's behaviour).
//! * [`stats`] — measures Table I from a generated workload.
//! * [`cache`] — the content-addressed on-disk store that makes repeat
//!   builds of the same `(network, repr, seed)` stream generation-free
//!   (DESIGN.md §9).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod calibrate;
pub mod generator;
pub mod networks;
pub mod profiles;
pub mod stats;
pub mod traces;

pub use cache::CacheOutcome;
pub use generator::{
    mix_seed, ActivationModel, DrawParts, LayerView, LayerWorkload, NetworkWorkload,
    Representation, Sampler,
};
pub use networks::Network;
