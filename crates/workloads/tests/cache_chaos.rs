//! Chaos fault sites in the cache read path (DESIGN.md §12): injected
//! corruption and truncation must be caught by the entry's integrity
//! verification and healed by the regenerate-on-mismatch path, with the
//! regenerated payload bit-identical to a fault-free build.
//!
//! This lives in its own integration binary because the fault plan is
//! process-global: arming it next to the ordinary cache tests would
//! corrupt *their* loads too (they would still pass — that is the
//! defense working — but hit/miss assertions would flake).

use std::sync::{Mutex, PoisonError};

use pra_chaos::{FaultPlan, Site};
use pra_workloads::cache::{ArtifactKind, ArtifactStore, Cache, CacheOutcome};
use pra_workloads::{Network, NetworkWorkload, Representation};

/// Serializes the tests in this binary around the global fault plan.
static CHAOS: Mutex<()> = Mutex::new(());

/// Field-by-field bit-identity (the workload type has no `PartialEq`;
/// same idiom as `cache_roundtrip.rs`).
fn assert_same_workload(a: &NetworkWorkload, b: &NetworkWorkload, what: &str) {
    assert_eq!(a.network, b.network, "{what}: network");
    assert_eq!(a.repr, b.repr, "{what}: repr");
    assert_eq!(a.model, b.model, "{what}: activation model");
    assert_eq!(a.layers.len(), b.layers.len(), "{what}: layer count");
    for (ga, gb) in a.layers.iter().zip(&b.layers) {
        assert_eq!(ga.spec.name(), gb.spec.name(), "{what}: layer name");
        assert_eq!(ga.window, gb.window, "{what}: window");
        assert_eq!(ga.stripes_precision, gb.stripes_precision, "{what}: precision");
        assert_eq!(ga.neurons, gb.neurons, "{what}: layer {} tensor", ga.spec.name());
    }
}

/// The tiered-store build under test, aimed at the scratch cache.
fn build_stored(
    cache: &Cache,
    net: Network,
    repr: Representation,
    seed: u64,
) -> (NetworkWorkload, CacheOutcome) {
    ArtifactStore::new(cache.dir()).tier(ArtifactKind::Workload).workload(net, repr, seed)
}

fn scratch_cache(tag: &str) -> (Cache, std::path::PathBuf) {
    let dir = std::env::temp_dir().join(format!("pra-cache-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    (Cache::new(&dir), dir)
}

#[test]
fn corrupted_and_truncated_reads_regenerate_bit_identically() {
    let _g = CHAOS.lock().unwrap_or_else(PoisonError::into_inner);
    let (net, repr, seed) = (Network::AlexNet, Representation::Fixed16, 0xC4A0u64);
    for site in [Site::CacheCorrupt, Site::CacheTruncate] {
        let (cache, dir) = scratch_cache(site.label());
        pra_chaos::disarm();
        let (clean, outcome) = build_stored(&cache, net, repr, seed);
        assert_eq!(outcome, CacheOutcome::Miss, "cold build populates the entry");
        assert_eq!(build_stored(&cache, net, repr, seed).1, CacheOutcome::Hit);

        // Every read now sees a mangled entry: verification must reject
        // it (a Miss, never a wrong payload) and regeneration must
        // produce exactly the fault-free workload.
        pra_chaos::arm(FaultPlan::new(7).with_site(site, 1.0, None));
        let (healed, outcome) = build_stored(&cache, net, repr, seed);
        assert_eq!(
            outcome,
            CacheOutcome::Miss,
            "{}: a mangled entry must read as a miss",
            site.label()
        );
        assert_same_workload(&healed, &clean, site.label());
        assert!(pra_chaos::fired_count(site) > 0, "{}: the fault must have fired", site.label());

        // Disarmed again, the republished entry serves warm hits.
        pra_chaos::disarm();
        let (warm, outcome) = build_stored(&cache, net, repr, seed);
        assert_eq!(outcome, CacheOutcome::Hit, "{}: the heal republished", site.label());
        assert_same_workload(&warm, &clean, "warm reread");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn sub_unity_corruption_rate_converges_to_a_hit() {
    let _g = CHAOS.lock().unwrap_or_else(PoisonError::into_inner);
    let (cache, dir) = scratch_cache("flaky");
    let (net, repr, seed) = (Network::NiN, Representation::Quant8, 0xF1A6u64);
    pra_chaos::disarm();
    let (clean, _) = build_stored(&cache, net, repr, seed);
    // A 50% corruption rate models a flaky medium: some loads fail and
    // regenerate, some succeed — every outcome must carry the same
    // bits.
    pra_chaos::arm(FaultPlan::new(11).with_site(Site::CacheCorrupt, 0.5, None));
    let mut hits = 0;
    for _ in 0..8 {
        let (w, outcome) = build_stored(&cache, net, repr, seed);
        assert_same_workload(&w, &clean, "flaky read");
        if outcome == CacheOutcome::Hit {
            hits += 1;
        }
    }
    pra_chaos::disarm();
    // 8 draws at 0.5: all-miss has probability 2⁻⁸ per seed and seed 11
    // is pinned, so this is deterministic, not flaky.
    assert!(hits > 0, "some loads must get through at rate 0.5");
    let _ = std::fs::remove_dir_all(&dir);
}
