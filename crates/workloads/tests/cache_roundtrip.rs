//! Integration tests for the content-addressed workload cache
//! (DESIGN.md §9): bit-exact round trips, corruption/truncation
//! fallback, version-bump invalidation, concurrent writers racing on
//! one key, and the guarded-deletion safety of `clear`.

use std::fs;
use std::path::PathBuf;

use pra_workloads::cache::{
    self, load_workload, store_workload, workload_key, workload_key_for_version, ArtifactKind,
    ArtifactStore, Cache, CacheOutcome, GENERATOR_VERSION,
};
use pra_workloads::{Network, NetworkWorkload, Representation};
use rayon::prelude::*;

/// A scratch cache directory unique to this test run; each test uses
/// its own tag so parallel tests never share state.
fn scratch(tag: &str) -> PathBuf {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_nanos() as u64);
    std::env::temp_dir().join(format!("pra-cache-it-{tag}-{}-{nanos}", std::process::id()))
}

/// The tiered-store entry point under test, aimed at the scratch
/// cache: workload tier only, same directory.
fn build_stored(
    cache: &Cache,
    net: Network,
    repr: Representation,
    seed: u64,
) -> (NetworkWorkload, CacheOutcome) {
    ArtifactStore::new(cache.dir()).tier(ArtifactKind::Workload).workload(net, repr, seed)
}

fn with_scratch(tag: &str, f: impl FnOnce(&Cache)) {
    let dir = scratch(tag);
    let cache = Cache::new(&dir);
    f(&cache);
    let _ = fs::remove_dir_all(&dir);
}

/// The single entry file a test stored (asserts there is exactly one).
fn only_entry(cache: &Cache) -> PathBuf {
    let mut files: Vec<PathBuf> =
        fs::read_dir(cache.dir()).expect("cache dir exists").map(|e| e.unwrap().path()).collect();
    assert_eq!(files.len(), 1, "expected exactly one entry: {files:?}");
    files.pop().unwrap()
}

const NET: Network = Network::AlexNet;
const REPR: Representation = Representation::Fixed16;
const SEED: u64 = 0x00DD_BA11;

#[test]
fn cache_round_trip_is_bit_identical() {
    with_scratch("roundtrip", |cache| {
        let (generated, first) = build_stored(cache, NET, REPR, SEED);
        assert_eq!(first, CacheOutcome::Miss);
        let (loaded, second) = build_stored(cache, NET, REPR, SEED);
        assert_eq!(second, CacheOutcome::Hit);
        assert_eq!(generated.network, loaded.network);
        assert_eq!(generated.repr, loaded.repr);
        assert_eq!(generated.model, loaded.model, "activation model must round-trip exactly");
        assert_eq!(generated.layers.len(), loaded.layers.len());
        for (g, l) in generated.layers.iter().zip(&loaded.layers) {
            assert_eq!(g.spec.name(), l.spec.name());
            assert_eq!(g.window, l.window);
            assert_eq!(g.stripes_precision, l.stripes_precision);
            assert_eq!(
                g.neurons,
                l.neurons,
                "layer {} tensor must be bit-identical",
                g.spec.name()
            );
        }
        // The cached stream equals pinned serial generation too.
        let serial = NetworkWorkload::build_serial(NET, REPR, SEED);
        assert_eq!(serial.layers[0].neurons, loaded.layers[0].neurons);
    });
}

#[test]
fn corrupt_and_truncated_entries_fall_back_to_regeneration() {
    with_scratch("corrupt", |cache| {
        let (generated, _) = build_stored(cache, NET, REPR, SEED);
        let path = only_entry(cache);

        // Flip one payload byte: checksum verification must reject it.
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        let key = workload_key(NET, REPR, SEED);
        assert!(load_workload(cache, &key, NET, REPR).is_none(), "corruption must miss");
        assert!(!path.exists(), "corrupt entry must be removed");

        // Regeneration repopulates and produces the same stream.
        let (again, outcome) = build_stored(cache, NET, REPR, SEED);
        assert_eq!(outcome, CacheOutcome::Miss);
        assert_eq!(again.layers[0].neurons, generated.layers[0].neurons);

        // Truncation (simulating a torn write that bypassed the atomic
        // rename) must also miss.
        let path = only_entry(cache);
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() / 3]).unwrap();
        let (_, outcome) = build_stored(cache, NET, REPR, SEED);
        assert_eq!(outcome, CacheOutcome::Miss, "truncated entry must regenerate");
    });
}

#[test]
fn generator_version_bump_invalidates_entries() {
    // The version is hashed into the key: a bump makes old entries
    // unreachable without any deletion pass.
    let current = workload_key(NET, REPR, SEED);
    let bumped = workload_key_for_version(NET, REPR, SEED, GENERATOR_VERSION + 1);
    assert_ne!(current, bumped);

    with_scratch("verbump", |cache| {
        let (_, outcome) = build_stored(cache, NET, REPR, SEED);
        assert_eq!(outcome, CacheOutcome::Miss);
        // Rewrite the stored entry's embedded version field (bytes
        // 8..12) and re-checksum nothing: the loader must reject the
        // version drift even though the file name still matches.
        let path = only_entry(cache);
        let mut bytes = fs::read(&path).unwrap();
        bytes[8..12].copy_from_slice(&(GENERATOR_VERSION + 1).to_le_bytes());
        fs::write(&path, &bytes).unwrap();
        let key = workload_key(NET, REPR, SEED);
        assert!(
            load_workload(cache, &key, NET, REPR).is_none(),
            "embedded version drift must be rejected"
        );
    });
}

#[test]
fn wrong_network_or_repr_lookup_misses() {
    with_scratch("wrongnet", |cache| {
        let (_, outcome) = build_stored(cache, NET, REPR, SEED);
        assert_eq!(outcome, CacheOutcome::Miss);
        // Different inputs derive different keys, so these are misses,
        // not mismatched payloads.
        let (_, o2) = build_stored(cache, Network::VggM, REPR, SEED);
        assert_eq!(o2, CacheOutcome::Miss);
        let (_, o3) = build_stored(cache, NET, Representation::Quant8, SEED);
        assert_eq!(o3, CacheOutcome::Miss);
        let (_, o4) = build_stored(cache, NET, REPR, SEED ^ 1);
        assert_eq!(o4, CacheOutcome::Miss);
        // And the originals still hit.
        assert_eq!(build_stored(cache, NET, REPR, SEED).1, CacheOutcome::Hit);
    });
}

#[test]
fn concurrent_writers_on_one_key_stay_consistent() {
    with_scratch("race", |cache| {
        let reference = NetworkWorkload::build_serial(NET, REPR, SEED);
        let key = workload_key(NET, REPR, SEED);
        // Hammer one key from the whole rayon pool: every iteration
        // stores the (identical) payload and immediately loads; a load
        // must only ever observe a complete, checksum-valid entry.
        let results: Vec<bool> = (0..32u64)
            .collect::<Vec<_>>()
            .into_par_iter()
            .map(|i| {
                if i % 3 == 0 {
                    store_workload(cache, &key, &reference).expect("store");
                }
                match load_workload(cache, &key, NET, REPR) {
                    Some(w) => {
                        assert_eq!(
                            w.layers[0].neurons, reference.layers[0].neurons,
                            "a racing reader saw torn data"
                        );
                        true
                    }
                    None => false,
                }
            })
            .collect();
        assert!(results.iter().any(|&hit| hit), "at least one racing load must succeed");
        // After the dust settles the entry is valid.
        assert!(load_workload(cache, &key, NET, REPR).is_some());
        let stats = cache.stats();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.temps, 0, "no temp files may leak from racing renames");
    });
}

#[test]
fn clear_only_touches_cache_entries_and_never_follows_symlinks() {
    with_scratch("guard", |cache| {
        let (_, outcome) = build_stored(cache, NET, REPR, SEED);
        assert_eq!(outcome, CacheOutcome::Miss);
        let entry = only_entry(cache);

        // A user file, a subdirectory, and (on unix) a symlink that is
        // *named like an entry* but points at the user file.
        let user_file = cache.dir().join("important-notes.txt");
        fs::write(&user_file, "do not delete").unwrap();
        let subdir = cache.dir().join("subdir");
        fs::create_dir(&subdir).unwrap();
        fs::write(subdir.join("keep.txt"), "nested").unwrap();
        #[cfg(unix)]
        let link = {
            let link = cache.dir().join(format!("wl-{}.prac", "e".repeat(64)));
            std::os::unix::fs::symlink(&user_file, &link).unwrap();
            link
        };

        let report = cache.clear().expect("clear");
        assert_eq!(report.removed, 1, "only the real entry goes");
        assert!(!entry.exists());
        assert!(user_file.exists(), "user file survives");
        assert_eq!(fs::read_to_string(&user_file).unwrap(), "do not delete");
        assert!(subdir.join("keep.txt").exists(), "subdirectories survive");
        #[cfg(unix)]
        {
            // The symlink matched the naming scheme but is not a
            // regular file: it is skipped, and its target untouched.
            assert!(fs::symlink_metadata(&link).is_ok(), "symlink itself survives");
        }
        assert!(report.skipped >= 2, "foreign files counted as skipped");
    });
}

#[test]
fn gc_stale_removes_only_other_generations() {
    with_scratch("gc", |cache| {
        build_stored(cache, NET, REPR, SEED);
        let fresh = only_entry(cache);
        // Forge a stale-generation sibling: same kind, different key
        // and embedded version.
        let stale_key = workload_key_for_version(NET, REPR, SEED, GENERATOR_VERSION + 7);
        cache
            .store(cache::WORKLOAD_KIND, GENERATOR_VERSION + 7, &stale_key, b"old bytes")
            .expect("store stale");
        let user_file = cache.dir().join("report.csv");
        fs::write(&user_file, "a,b").unwrap();

        let report = cache.gc_stale(&[(cache::WORKLOAD_KIND, GENERATOR_VERSION)]).expect("gc");
        assert_eq!(report.removed, 1, "exactly the stale generation goes");
        assert_eq!(report.kept, 1, "the current-generation entry is counted as kept");
        assert_eq!(report.skipped, 1, "only the foreign file is skipped");
        assert!(fresh.exists(), "current-generation entry survives GC");
        assert!(user_file.exists(), "foreign file survives GC");
        assert_eq!(build_stored(cache, NET, REPR, SEED).1, CacheOutcome::Hit);
    });
}

#[test]
fn disabled_cache_writes_nothing() {
    // `NetworkWorkload::build` is the pure kernel — it must not touch
    // disk, and a `no_disk` store must not either.
    with_scratch("disabled", |cache| {
        let _ = NetworkWorkload::build(Network::VggM, REPR, 99);
        let diskless = ArtifactStore::new(cache.dir()).tier(ArtifactKind::Workload).no_disk();
        let (_, outcome) = diskless.workload(Network::VggM, REPR, 99);
        assert_eq!(outcome, CacheOutcome::Disabled);
        assert!(!cache.dir().exists() || cache.stats().entries == 0);
    });
}
