//! Parallel-generation determinism: `NetworkWorkload::build` must
//! produce bit-identical tensors with row-job parallelism on or off, and
//! independent of the worker-thread count — the invariant that makes the
//! parallel generator a pure optimization (DESIGN.md §8).
//!
//! This lives in its own integration-test binary because it reconfigures
//! the global rayon pool; unit tests sharing a process must not race
//! against that.

use pra_workloads::{mix_seed, ActivationModel, Network, NetworkWorkload, Representation};

fn toy_model() -> ActivationModel {
    ActivationModel {
        zero_frac: 0.45,
        sigma: 0.12,
        suffix_density: 0.35,
        outlier_prob: 0.008,
        dense_prob: 0.10,
        heavy_share: 0.40,
    }
}

fn assert_same_tensors(a: &NetworkWorkload, b: &NetworkWorkload, what: &str) {
    assert_eq!(a.layers.len(), b.layers.len(), "{what}: layer count");
    for (idx, (la, lb)) in a.layers.iter().zip(&b.layers).enumerate() {
        assert_eq!(la.neurons, lb.neurons, "{what}: layer {idx} tensors differ");
    }
}

#[test]
fn parallel_equals_serial_and_is_thread_count_independent() {
    let model = toy_model();
    let build = |parallel: bool| {
        if parallel {
            NetworkWorkload::build_with_model(Network::AlexNet, Representation::Fixed16, model, 42)
        } else {
            NetworkWorkload::build_with_model_serial(
                Network::AlexNet,
                Representation::Fixed16,
                model,
                42,
            )
        }
    };
    let serial = build(false);
    for threads in [1usize, 2, 3, 8] {
        rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build_global()
            .expect("pool reconfiguration");
        let parallel = build(true);
        assert_same_tensors(&serial, &parallel, &format!("{threads} threads"));
    }
    // Restore the ambient default for any test added to this binary
    // later.
    let _ = rayon::ThreadPoolBuilder::new().num_threads(0).build_global();
}

#[test]
fn quant8_parallel_equals_serial() {
    let model = toy_model();
    let a = NetworkWorkload::build_with_model(Network::NiN, Representation::Quant8, model, 7);
    let b =
        NetworkWorkload::build_with_model_serial(Network::NiN, Representation::Quant8, model, 7);
    assert_same_tensors(&a, &b, "quant8");
}

#[test]
fn calibrated_build_serial_variant_matches() {
    // The calibrated entry points share the same generation core.
    let a = NetworkWorkload::build(Network::AlexNet, Representation::Fixed16, 0xD0E);
    let b = NetworkWorkload::build_serial(Network::AlexNet, Representation::Fixed16, 0xD0E);
    assert_same_tensors(&a, &b, "calibrated");
}

#[test]
fn seed_mixer_avalanches() {
    // Adjacent streams and adjacent seeds must land far apart — a
    // regression guard for the SplitMix64 mixer the row jobs rely on.
    let base = mix_seed(42, 0);
    for stream in 1..64u64 {
        let mixed = mix_seed(42, stream);
        assert_ne!(mixed, base);
        assert!(
            (mixed ^ base).count_ones() >= 8,
            "stream {stream}: weak avalanche ({:#x} vs {:#x})",
            mixed,
            base
        );
    }
    assert_ne!(mix_seed(42, 1), mix_seed(43, 1));
}

#[test]
fn different_rows_get_different_streams() {
    // No two rows of a layer (nor the same row of different layers) may
    // repeat a stream: sample a few tensors and check rows differ.
    let w = NetworkWorkload::build_with_model(
        Network::AlexNet,
        Representation::Fixed16,
        toy_model(),
        11,
    );
    let layer = &w.layers[1]; // 27x27x96: wide rows, many of them
    let dim = layer.neurons.dim();
    let row_len = dim.x * dim.i;
    let data = layer.neurons.as_slice();
    let first = &data[..row_len];
    for y in 1..dim.y {
        assert_ne!(&data[y * row_len..(y + 1) * row_len], first, "row {y} repeats row 0");
    }
}
