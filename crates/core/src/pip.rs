//! The Pragmatic Inner Product unit (PIP) datapath (Fig. 6, Fig. 7a).
//!
//! Every cycle a PIP combines 16 synapses with their lanes' pending
//! oneffsets: each oneffset drives a shifter that effectively multiplies
//! the synapse by a power of two, an AND gate injects null terms for
//! stalled or exhausted lanes, a `neg` wire (used by the CSD extension)
//! subtracts instead of adds, the shifted synapses reduce through the
//! adder tree, and — in the 2-stage arrangement of §V-D — the tree output
//! passes through one common second-stage shifter:
//!
//! ```text
//! Σᵢ (Sᵢ << Kᵢ) = ( Σᵢ (Sᵢ << K′ᵢ) ) << C      with Kᵢ = K′ᵢ + C
//! ```
//!
//! The first-stage shifts `K′ᵢ` are bounded by `2^L`; the common term `C`
//! is the cycle's minimum oneffset chosen by the column control.

use serde::{Deserialize, Serialize};

/// Per-lane control for one PIP cycle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LaneControl {
    /// First-stage shift `K′ = oneffset − C`; must be below `2^L` for the
    /// configured first-stage width.
    pub shift: u8,
    /// Whether the lane contributes a term this cycle (stalled/exhausted
    /// lanes inject a null term through the AND gate).
    pub active: bool,
    /// Whether the term is subtracted (the `neg` wire; always false for
    /// plain oneffset encoding of unsigned neurons).
    pub neg: bool,
}

impl LaneControl {
    /// An active, non-negated lane shifting by `shift`.
    pub fn active(shift: u8) -> Self {
        Self { shift, active: true, neg: false }
    }
}

/// One PIP cycle: shift each active synapse by its lane's first-stage
/// amount, negate where requested, reduce through the adder tree, and
/// apply the common second-stage shift.
///
/// Arithmetic is exact (`i64`); the hardware's datapath widths
/// (16 + 2^L − 1 bits into the tree, Fig. 7a) are sized so no information
/// is lost, which the functional-equivalence tests verify end to end.
pub fn pip_cycle(synapses: &[i16; 16], lanes: &[LaneControl; 16], second_stage_shift: u8) -> i64 {
    let mut tree = 0i64;
    for (s, lane) in synapses.iter().zip(lanes) {
        if !lane.active {
            continue;
        }
        let term = (i64::from(*s)) << lane.shift;
        tree += if lane.neg { -term } else { term };
    }
    tree << second_stage_shift
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idle() -> [LaneControl; 16] {
        [LaneControl::default(); 16]
    }

    #[test]
    fn fig4c_example_single_cycle() {
        // Fig. 4c: synapses s0 = 001, s1 = 111; neurons n0 = 001 (oneffset
        // 0), n1 = 010 (oneffset 1). One cycle computes the full inner
        // product 1·1 + 7·2 = 15.
        let mut synapses = [0i16; 16];
        synapses[0] = 0b001;
        synapses[1] = 0b111;
        let mut lanes = idle();
        lanes[0] = LaneControl::active(0);
        lanes[1] = LaneControl::active(1);
        assert_eq!(pip_cycle(&synapses, &lanes, 0), 15);
    }

    #[test]
    fn two_stage_equals_one_stage() {
        // (s << (k' + c)) decomposed: shift by k' in the lane, by c at the
        // second stage.
        let mut synapses = [0i16; 16];
        synapses[0] = 21;
        synapses[1] = -9;
        let mut one = idle();
        one[0] = LaneControl::active(5);
        one[1] = LaneControl::active(3);
        let direct = pip_cycle(&synapses, &one, 0);

        let mut two = idle();
        two[0] = LaneControl::active(2);
        two[1] = LaneControl::active(0);
        let staged = pip_cycle(&synapses, &two, 3);
        assert_eq!(direct, staged);
    }

    #[test]
    fn inactive_lanes_inject_null_terms() {
        let synapses = [i16::MAX; 16];
        let mut lanes = idle();
        lanes[7] = LaneControl::active(0);
        assert_eq!(pip_cycle(&synapses, &lanes, 0), i64::from(i16::MAX));
    }

    #[test]
    fn neg_wire_subtracts() {
        let mut synapses = [0i16; 16];
        synapses[0] = 100;
        synapses[1] = 100;
        let mut lanes = idle();
        lanes[0] = LaneControl::active(1); // +200
        lanes[1] = LaneControl { shift: 0, active: true, neg: true }; // -100
        assert_eq!(pip_cycle(&synapses, &lanes, 0), 100);
    }

    #[test]
    fn negative_synapses_shift_correctly() {
        let mut synapses = [0i16; 16];
        synapses[0] = -3;
        let mut lanes = idle();
        lanes[0] = LaneControl::active(4);
        assert_eq!(pip_cycle(&synapses, &lanes, 2), -3 * 16 * 4);
    }

    #[test]
    fn worst_case_magnitude_fits_exactly() {
        // 16 lanes of the widest synapse at the widest shift must not
        // overflow the i64 model (hardware: 31-bit terms + 4-bit tree
        // growth + accumulator).
        let synapses = [i16::MIN; 16];
        let lanes = [LaneControl::active(15); 16];
        let v = pip_cycle(&synapses, &lanes, 0);
        assert_eq!(v, (i64::from(i16::MIN) * 16) << 15);
    }
}
