//! The persisted encoded-artifact tier: serialization of
//! [`EncodedLayer`] mask buffers and warm [`LayerScheduler`] memo
//! tables (DESIGN.md §15).
//!
//! The encode phase — trimming and term-encoding every neuron, plus the
//! brick-schedule memo fills the simulator performs — is a pure
//! function of the workload's neuron values and the distinct
//! `(EncodingKey, SchedulerConfig)` pairs a run evaluates. This module
//! persists that work in the content-addressed cache
//! (`pra_workloads::cache`) as a second artifact kind next to workload
//! streams and traffic tables, so a warm process pays a deserialize
//! instead of a re-encode:
//!
//! * **One entry per (workload, pair set)** — a single payload covers
//!   every distinct pair, preserving the in-memory sharing invariant on
//!   load: pairs that agree on the [`EncodingKey`] share one mask
//!   buffer `Arc`, exactly as a fresh build would.
//! * **Fidelity-free keys** — the key deliberately excludes
//!   [`crate::Fidelity`]: a `Sampled` run visits a subset of the bricks
//!   a `Full` run visits, and memo values are pure functions of
//!   `(masks, SchedulerConfig)`, so one entry serves both. Memo slots
//!   never visited serialize as the lazy sentinel and stay lazy after a
//!   load.
//! * **Seed-aware keys** — unlike traffic tables, masks *do* depend on
//!   neuron values, so the key absorbs the workload's content address
//!   (which covers network descriptor, calibration inputs, generator
//!   version and seed) plus the workload's actual per-layer geometry
//!   and windows.
//! * **Fail-closed loads** — any mismatch (geometry drift, foreign pair
//!   set, short payload, [`ENCODER_VERSION`] drift, corruption caught
//!   by the container checksum) makes the load answer `None` and the
//!   caller re-encode, bit-identically.

use std::sync::Arc;

use pra_workloads::cache::{CacheKey, KeyHasher};
use pra_workloads::NetworkWorkload;

use crate::column::{ScanOrder, SchedulerConfig};
use crate::config::{Encoding, EncodingKey};
use crate::schedule::{EncodedLayer, LayerScheduler};
use crate::shared::SharedLayer;

/// Version of the persisted encoded-artifact payload. Bump whenever a
/// code change alters the serialized bytes (mask encoding, memo
/// packing, payload layout): the version is embedded in every entry
/// and hashed into every key, so old entries become unreachable
/// instead of deserializing into wrong artifacts.
pub const ENCODER_VERSION: u32 = 1;

/// Cache entry kind for persisted encoded layers + schedule memos.
pub const ENCODED_KIND: &str = "en";

/// Compile-time fingerprint of the encoding pipeline's sources (this
/// module, the encode/schedule pipeline, the scheduler itself and the
/// fixed-point trim/CSD kernels), mixed into every encoded key: an
/// encoding change that forgets the [`ENCODER_VERSION`] bump makes old
/// entries unreachable locally, matching the workload and traffic
/// caches' fail-closed behavior.
fn encoder_source_fingerprint() -> u64 {
    static FP: std::sync::OnceLock<u64> = std::sync::OnceLock::new();
    *FP.get_or_init(|| {
        let sources: [&str; 5] = [
            include_str!("artifact.rs"),
            include_str!("schedule.rs"),
            include_str!("column.rs"),
            include_str!("../../fixed/src/precision.rs"),
            include_str!("../../fixed/src/csd.rs"),
        ];
        let mut h = 0u64;
        for s in sources {
            h = pra_workloads::cache::checksum64(s.as_bytes()) ^ h.rotate_left(9);
        }
        h
    })
}

fn encoding_tag(e: Encoding) -> u8 {
    match e {
        Encoding::Oneffset => 0,
        Encoding::Csd => 1,
    }
}

fn order_tag(o: ScanOrder) -> u8 {
    match o {
        ScanOrder::LsbFirst => 0,
        ScanOrder::MsbFirst => 1,
    }
}

/// The distinct [`EncodingKey`]s of `wanted`, preserving
/// first-appearance order (the same order the shared build dedups in).
fn distinct_keys(wanted: &[(EncodingKey, SchedulerConfig)]) -> Vec<EncodingKey> {
    let mut keys: Vec<EncodingKey> = Vec::new();
    for &(key, _) in wanted {
        if !keys.contains(&key) {
            keys.push(key);
        }
    }
    keys
}

/// Content-address of a workload's encoded artifacts under `wanted`.
///
/// The workload's identity enters twice, belt and braces: through its
/// content address (`workload_key`, which covers the network
/// descriptor, profile/calibration inputs, generator version and
/// `seed`) and through the workload's *actual* per-layer geometry,
/// windows and activation-model parameters — so a hand-built test
/// workload that reuses a real network's name can never alias the real
/// network's entry.
pub(crate) fn encoded_key(
    workload: &NetworkWorkload,
    seed: u64,
    wanted: &[(EncodingKey, SchedulerConfig)],
) -> CacheKey {
    let mut h = KeyHasher::new("pra-encoded-v1");
    h.u32(ENCODER_VERSION);
    h.u64(encoder_source_fingerprint());
    h.str(pra_workloads::cache::workload_key(workload.network, workload.repr, seed).hex());
    for v in [
        workload.model.zero_frac,
        workload.model.sigma,
        workload.model.suffix_density,
        workload.model.outlier_prob,
        workload.model.dense_prob,
        workload.model.heavy_share,
    ] {
        h.f64(v);
    }
    h.u64(workload.layers.len() as u64);
    for layer in &workload.layers {
        h.conv_spec(&layer.spec);
        h.u32(u32::from(layer.window.msb()));
        h.u32(u32::from(layer.window.lsb()));
        h.u32(u32::from(layer.stripes_precision));
    }
    h.u64(wanted.len() as u64);
    for &(key, cfg) in wanted {
        h.u32(u32::from(key.software_trim));
        h.u32(u32::from(encoding_tag(key.encoding)));
        h.u32(u32::from(cfg.l_bits));
        h.u32(u32::from(order_tag(cfg.order)));
        h.u32(u32::from(cfg.per_cycle));
    }
    h.finish()
}

/// Serializes every layer's shared artifacts: a pair-set descriptor,
/// then per layer the geometry, one mask buffer per distinct
/// [`EncodingKey`] and one memo snapshot per pair. All integers are
/// little-endian; the cache container adds the integrity trailer.
pub(crate) fn encode_layers(
    layers: &[SharedLayer],
    wanted: &[(EncodingKey, SchedulerConfig)],
) -> Vec<u8> {
    let keys = distinct_keys(wanted);
    let mut out = Vec::new();
    out.extend_from_slice(&(layers.len() as u32).to_le_bytes());
    out.push(keys.len() as u8);
    for key in &keys {
        out.push(u8::from(key.software_trim));
        out.push(encoding_tag(key.encoding));
    }
    out.push(wanted.len() as u8);
    for &(key, cfg) in wanted {
        let key_index = keys.iter().position(|k| *k == key).unwrap_or(0) as u8;
        out.push(key_index);
        out.push(cfg.l_bits);
        out.push(order_tag(cfg.order));
        out.push(cfg.per_cycle);
    }
    for layer in layers {
        // Every pair of a layer shares one geometry; take it from the
        // first scheduler's mask buffer.
        let dim = layer.schedulers[0].2.encoded().dim();
        for d in [dim.x, dim.y, dim.i] {
            out.extend_from_slice(&(d as u32).to_le_bytes());
        }
        for key in &keys {
            let encoded = layer
                .schedulers
                .iter()
                .find(|(k, _, _)| k == key)
                .map(|(_, _, s)| s.encoded())
                .expect("every distinct key has at least one scheduler");
            out.reserve(encoded.masks().len() * 4);
            for &m in encoded.masks() {
                out.extend_from_slice(&m.to_le_bytes());
            }
        }
        for &(key, cfg) in wanted {
            let sched = layer
                .schedulers
                .iter()
                .find(|(k, s, _)| *k == key && *s == cfg)
                .map(|(_, _, s)| s)
                .expect("every wanted pair has a scheduler");
            let memo = sched.memo_snapshot();
            out.reserve(memo.len() * 8);
            for m in memo {
                out.extend_from_slice(&m.to_le_bytes());
            }
        }
    }
    out
}

/// A streaming decoder over an owned payload: the header (pair-set
/// descriptor) is validated up front by [`LayerDecoder::new`], then
/// [`LayerDecoder::next_layer`] materializes one layer at a time — so
/// the pipelined builder can hand layer *n* to a waiting simulation
/// thread while layer *n + 1* is still being parsed, exactly mirroring
/// how a cold build streams layers out of the encoder. Every read is
/// bounds-checked so stale or foreign bytes fail closed (`None`)
/// instead of panicking.
pub(crate) struct LayerDecoder {
    payload: Vec<u8>,
    pos: usize,
    keys: Vec<EncodingKey>,
    wanted: Vec<(EncodingKey, SchedulerConfig)>,
    pair_key_index: Vec<usize>,
    dims: Vec<pra_tensor::Dim3>,
    next: usize,
}

impl LayerDecoder {
    /// Validates the payload header against what the caller is about to
    /// build: the pair set must match `wanted` exactly (content and
    /// order) and the layer count must match `dims`. `None` on any
    /// mismatch — the caller re-encodes from the workload.
    pub(crate) fn new(
        payload: Vec<u8>,
        wanted: &[(EncodingKey, SchedulerConfig)],
        dims: &[pra_tensor::Dim3],
    ) -> Option<Self> {
        let mut d = LayerDecoder {
            payload,
            pos: 0,
            keys: distinct_keys(wanted),
            wanted: wanted.to_vec(),
            pair_key_index: Vec::with_capacity(wanted.len()),
            dims: dims.to_vec(),
            next: 0,
        };
        if d.u32()? as usize != d.dims.len() || d.u8()? as usize != d.keys.len() {
            return None;
        }
        for i in 0..d.keys.len() {
            let key = d.keys[i];
            if d.u8()? != u8::from(key.software_trim) || d.u8()? != encoding_tag(key.encoding) {
                return None;
            }
        }
        if d.u8()? as usize != d.wanted.len() {
            return None;
        }
        for i in 0..d.wanted.len() {
            let (key, cfg) = d.wanted[i];
            let key_index = d.u8()? as usize;
            if d.keys.get(key_index) != Some(&key)
                || d.u8()? != cfg.l_bits
                || d.u8()? != order_tag(cfg.order)
                || d.u8()? != cfg.per_cycle
            {
                return None;
            }
            d.pair_key_index.push(key_index);
        }
        Some(d)
    }

    fn take(&mut self, n: usize) -> Option<&[u8]> {
        let end = self.pos.checked_add(n)?;
        let head = self.payload.get(self.pos..end)?;
        self.pos = end;
        Some(head)
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    /// Decodes the next layer in index order, validating its geometry
    /// against the expected dim. `None` when every layer has already
    /// been decoded, or on any payload mismatch (fail closed — the
    /// caller rebuilds that layer fresh, bit-identically).
    pub(crate) fn next_layer(&mut self) -> Option<SharedLayer> {
        let dim = *self.dims.get(self.next)?;
        self.next += 1;
        let (x, y, i) = (self.u32()? as usize, self.u32()? as usize, self.u32()? as usize);
        if x != dim.x || y != dim.y || i != dim.i {
            return None;
        }
        let bricks = dim.x.checked_mul(dim.y)?.checked_mul(dim.i.div_ceil(pra_tensor::BRICK))?;
        let mut encodings: Vec<Arc<EncodedLayer>> = Vec::with_capacity(self.keys.len());
        for _ in 0..self.keys.len() {
            let raw = self.take(bricks.checked_mul(pra_tensor::BRICK * 4)?)?;
            let masks: Vec<u32> =
                raw.chunks_exact(4).map(|c| u32::from_le_bytes(c.try_into().unwrap())).collect();
            encodings.push(Arc::new(EncodedLayer::from_parts(dim, masks)?));
        }
        let mut schedulers = Vec::with_capacity(self.wanted.len());
        for p in 0..self.wanted.len() {
            let (key, cfg) = self.wanted[p];
            let raw = self.take(bricks.checked_mul(8)?)?;
            let memo: Vec<u64> =
                raw.chunks_exact(8).map(|c| u64::from_le_bytes(c.try_into().unwrap())).collect();
            let encoded = Arc::clone(&encodings[self.pair_key_index[p]]);
            schedulers.push((
                key,
                cfg,
                Arc::new(LayerScheduler::with_encoded_memo(encoded, cfg, memo)?),
            ));
        }
        Some(SharedLayer { schedulers })
    }

    /// `true` once every expected layer decoded and no trailing bytes
    /// remain — the whole-payload validity check a batch decode
    /// enforces before trusting the entry.
    pub(crate) fn fully_consumed(&self) -> bool {
        self.next == self.dims.len() && self.pos == self.payload.len()
    }
}

/// Inverse of [`encode_layers`]: the batch (all-layers-at-once) decode,
/// used where nothing overlaps the load. `None` on any mismatch — the
/// caller re-encodes from the workload.
pub(crate) fn decode_layers(
    payload: Vec<u8>,
    wanted: &[(EncodingKey, SchedulerConfig)],
    dims: &[pra_tensor::Dim3],
) -> Option<Vec<SharedLayer>> {
    let mut d = LayerDecoder::new(payload, wanted, dims)?;
    let mut layers = Vec::with_capacity(dims.len());
    for _ in dims {
        layers.push(d.next_layer()?);
    }
    d.fully_consumed().then_some(layers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pra_workloads::cache::ArtifactKind;

    #[test]
    fn encoded_kind_matches_store_tag() {
        assert_eq!(ENCODED_KIND, ArtifactKind::Encoded.tag());
        assert_eq!(crate::shared::TRAFFIC_KIND, ArtifactKind::Traffic.tag());
        assert_eq!(pra_workloads::cache::WORKLOAD_KIND, ArtifactKind::Workload.tag());
    }

    #[test]
    fn keys_separate_pair_sets_seeds_and_versions() {
        let workload = crate::shared::test_toy_workload();
        let one = crate::PraConfig::two_stage(2, pra_workloads::Representation::Fixed16);
        let wanted = [(one.encoding_key(), one.scheduler())];
        let base = encoded_key(&workload, 7, &wanted);
        assert_eq!(base, encoded_key(&workload, 7, &wanted), "deterministic");
        assert_ne!(base, encoded_key(&workload, 8, &wanted), "seed separates");
        let single = crate::PraConfig::single_stage(pra_workloads::Representation::Fixed16);
        let wider =
            [(one.encoding_key(), one.scheduler()), (single.encoding_key(), single.scheduler())];
        assert_ne!(base, encoded_key(&workload, 7, &wider), "pair set separates");
        // Fidelity must NOT separate: it never reaches the key inputs.
        let mut fewer_layers = workload.clone();
        fewer_layers.layers.truncate(1);
        assert_ne!(base, encoded_key(&fewer_layers, 7, &wanted), "geometry separates");
    }
}
