//! Bit-exact functional model of the Pragmatic datapath.
//!
//! Drives the PIP model of [`crate::pip`] cycle by cycle exactly as the
//! scheduler of [`crate::column`] would — per brick step, pick the minimum
//! pending oneffset, first-stage-shift each consuming lane by the
//! difference, reduce, second-stage-shift by the minimum, accumulate — and
//! produces the layer's raw output sums. The workspace's core correctness
//! invariant is that this equals [`pra_tensor::conv::convolve`] exactly,
//! for both encodings and any first-stage width.

use pra_tensor::brick::{brick_steps, BrickStep};
use pra_tensor::{ConvLayerSpec, Tensor3, BRICK};

use crate::config::{Encoding, PraConfig};
use crate::pip::{pip_cycle, LaneControl};

/// A pending signed power-of-two term.
#[derive(Debug, Clone, Copy)]
struct Term {
    pow: u8,
    neg: bool,
}

/// Computes the layer's raw output sums through the Pragmatic datapath.
///
/// `neurons` are the stored input values (trimming, if enabled in `cfg`,
/// is applied before encoding, exactly like the §V-F AND gates at the
/// previous layer's output); `synapses` is one tensor per filter.
///
/// # Panics
///
/// Panics if tensor shapes do not match `spec`.
pub fn compute_layer(
    cfg: &PraConfig,
    spec: &ConvLayerSpec,
    neurons: &Tensor3<u16>,
    synapses: &[Tensor3<i16>],
    window: pra_fixed::PrecisionWindow,
) -> Tensor3<i64> {
    assert_eq!(neurons.dim(), spec.input, "neuron tensor shape mismatch");
    assert_eq!(synapses.len(), spec.num_filters, "filter count mismatch");
    let steps = brick_steps(spec);
    let mut out = Tensor3::<i64>::zeros(spec.output_dim());

    for wy in 0..spec.out_y() {
        for wx in 0..spec.out_x() {
            let (ox, oy) = spec.window_origin(wx, wy);
            let mut acc = vec![0i64; spec.num_filters];
            for step in &steps {
                let brick =
                    neurons.brick_padded(ox + step.fx as isize, oy + step.fy as isize, step.i0);
                let queues = encode_brick(cfg, window, &brick);
                accumulate_step(cfg, spec, synapses, *step, queues, &mut acc);
            }
            for (f, &v) in acc.iter().enumerate() {
                out.set(wx, wy, f, v);
            }
        }
    }
    out
}

fn encode_brick(
    cfg: &PraConfig,
    window: pra_fixed::PrecisionWindow,
    brick: &[u16; BRICK],
) -> [Vec<Term>; BRICK] {
    std::array::from_fn(|lane| {
        let v = if cfg.software_trim { window.trim(brick[lane]) } else { brick[lane] };
        match cfg.encoding {
            Encoding::Oneffset => pra_fixed::OneffsetList::encode(v)
                .powers()
                .iter()
                .map(|&pow| Term { pow, neg: false })
                .collect(),
            Encoding::Csd => {
                pra_fixed::csd::encode(v).iter().map(|t| Term { pow: t.pow, neg: t.neg }).collect()
            }
        }
    })
}

/// Runs the column scheduler cycle by cycle for one brick step, feeding
/// each cycle's lane controls to one PIP per filter and accumulating.
fn accumulate_step(
    cfg: &PraConfig,
    spec: &ConvLayerSpec,
    synapses: &[Tensor3<i16>],
    step: BrickStep,
    queues: [Vec<Term>; BRICK],
    acc: &mut [i64],
) {
    // Gather each filter's synapse brick once.
    let bricks: Vec<[i16; BRICK]> = synapses
        .iter()
        .map(|f| {
            let mut b = [0i16; BRICK];
            let end = (step.i0 + BRICK).min(spec.input.i);
            for (k, slot) in b.iter_mut().enumerate().take(end.saturating_sub(step.i0)) {
                *slot = f.get(step.fx, step.fy, step.i0 + k);
            }
            b
        })
        .collect();

    let first_stage = 1u32 << cfg.first_stage_bits;
    let mut heads = [0usize; BRICK];
    loop {
        // The column control: minimum pending oneffset drives the common
        // second-stage shifter.
        let mut min = u32::MAX;
        for (lane, q) in queues.iter().enumerate() {
            if heads[lane] < q.len() {
                min = min.min(u32::from(q[heads[lane]].pow));
            }
        }
        if min == u32::MAX {
            break;
        }
        let mut lanes = [LaneControl::default(); BRICK];
        for (lane, q) in queues.iter().enumerate() {
            if heads[lane] < q.len() {
                let t = q[heads[lane]];
                let diff = u32::from(t.pow) - min;
                if diff < first_stage {
                    lanes[lane] = LaneControl { shift: diff as u8, active: true, neg: t.neg };
                    heads[lane] += 1;
                }
            }
        }
        for (f, brick) in bricks.iter().enumerate() {
            acc[f] += pip_cycle(brick, &lanes, min as u8);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pra_fixed::PrecisionWindow;
    use pra_tensor::conv::convolve;
    use pra_workloads::generator::generate_synapses;
    use pra_workloads::Representation;

    fn check_equivalence(cfg: &PraConfig, spec: &ConvLayerSpec, neurons: &Tensor3<u16>) {
        let synapses = generate_synapses(spec, 0xBEEF);
        let expected = convolve(spec, neurons, &synapses);
        let got = compute_layer(cfg, spec, neurons, &synapses, PrecisionWindow::full());
        assert_eq!(got, expected, "functional mismatch for {}", cfg.label());
    }

    fn toy_spec() -> ConvLayerSpec {
        ConvLayerSpec::new("f", (6, 5, 20), (3, 3), 4, 1, 1).unwrap()
    }

    fn toy_neurons(spec: &ConvLayerSpec) -> Tensor3<u16> {
        Tensor3::from_fn(spec.input, |x, y, i| ((x * 1009 + y * 757 + i * 313) % 65536) as u16)
    }

    #[test]
    fn matches_reference_conv_single_stage() {
        let spec = toy_spec();
        let cfg = PraConfig::single_stage(Representation::Fixed16).with_trim(false);
        check_equivalence(&cfg, &spec, &toy_neurons(&spec));
    }

    #[test]
    fn matches_reference_conv_every_l() {
        let spec = toy_spec();
        let neurons = toy_neurons(&spec);
        for l in 0..=4 {
            let cfg = PraConfig::two_stage(l, Representation::Fixed16).with_trim(false);
            check_equivalence(&cfg, &spec, &neurons);
        }
    }

    #[test]
    fn matches_reference_conv_csd() {
        let spec = toy_spec();
        let neurons = toy_neurons(&spec);
        for l in [0u8, 2, 4] {
            let cfg = PraConfig {
                encoding: Encoding::Csd,
                ..PraConfig::two_stage(l, Representation::Fixed16).with_trim(false)
            };
            check_equivalence(&cfg, &spec, &neurons);
        }
    }

    #[test]
    fn matches_reference_with_stride_and_no_padding() {
        let spec = ConvLayerSpec::new("s", (11, 11, 16), (3, 3), 3, 2, 0).unwrap();
        let neurons = toy_neurons(&spec);
        let cfg = PraConfig::two_stage(2, Representation::Fixed16).with_trim(false);
        check_equivalence(&cfg, &spec, &neurons);
    }

    #[test]
    fn extreme_values_are_exact() {
        let spec = ConvLayerSpec::new("e", (4, 4, 16), (2, 2), 2, 1, 0).unwrap();
        let neurons =
            Tensor3::from_fn(spec.input, |x, _, i| if (x + i) % 3 == 0 { u16::MAX } else { 1 });
        let cfg = PraConfig::two_stage(1, Representation::Fixed16).with_trim(false);
        check_equivalence(&cfg, &spec, &neurons);
    }

    #[test]
    fn trimming_equals_convolving_trimmed_values() {
        let spec = toy_spec();
        let neurons = toy_neurons(&spec);
        let window = PrecisionWindow::new(9, 2);
        let synapses = generate_synapses(&spec, 0xBEEF);
        let cfg = PraConfig::two_stage(2, Representation::Fixed16); // trim on
        let got = compute_layer(&cfg, &spec, &neurons, &synapses, window);
        let trimmed = neurons.map(|v| window.trim(v));
        let expected = convolve(&spec, &trimmed, &synapses);
        assert_eq!(got, expected);
    }

    #[test]
    fn ragged_depth_zero_extends() {
        let spec = ConvLayerSpec::new("r", (4, 4, 19), (2, 2), 2, 1, 0).unwrap();
        let neurons = toy_neurons(&spec);
        let cfg = PraConfig::two_stage(3, Representation::Fixed16).with_trim(false);
        check_equivalence(&cfg, &spec, &neurons);
    }
}
