//! The per-column oneffset scheduler (§V-D, Fig. 7).
//!
//! All 16 PIPs of a column process the same 16-neuron brick, one oneffset
//! per neuron per cycle. With 2-stage shifting, the column's (shared,
//! amortized) control logic compares the pending oneffsets each cycle,
//! picks the minimum — which drives the common second-stage shifter — and
//! lets every lane whose pending oneffset differs from that minimum by
//! less than `2^L` consume it through its `L`-bit first-stage shifter;
//! the remaining lanes stall.
//!
//! Oneffsets are consumed in ascending power order (see
//! [`pra_fixed::oneffset`] for why). Two structural facts this module's
//! tests pin down:
//!
//! * a brick never takes more cycles than the representation width (the
//!   per-cycle minimum is consumed by every lane holding it, and there are
//!   at most 16 distinct powers) — this is what guarantees PRA never falls
//!   behind DaDianNao;
//! * larger `L` never increases the cycle count.

use serde::{Deserialize, Serialize};

/// Outcome of scheduling one column for one brick step.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ColumnSchedule {
    /// Cycles until every lane drained its oneffset list.
    pub cycles: u32,
    /// Oneffsets consumed (the brick's total essential terms).
    pub terms: u32,
    /// Lane-cycles spent stalled or idle (null terms injected) while the
    /// column was busy: `16 × cycles − terms`.
    pub idle_lane_cycles: u32,
}

/// Order in which a lane's oneffsets are consumed.
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize,
)]
pub enum ScanOrder {
    /// Least-significant first: the cycle's *minimum* pending oneffset
    /// drives the second-stage shifter — the order of the Fig. 7 worked
    /// example (crate default).
    #[default]
    LsbFirst,
    /// Most-significant first: the literal "16-bit leading one detector"
    /// of §V-C; the cycle's *maximum* pending oneffset anchors the window.
    /// Kept as the `ablation_order` study — the two orders differ only
    /// through stall patterns at small `L`.
    MsbFirst,
}

/// Scheduler parameters beyond the brick itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct SchedulerConfig {
    /// First-stage shifter control bits `L` (§V-D).
    pub l_bits: u8,
    /// Consumption order.
    pub order: ScanOrder,
    /// Oneffsets a lane can consume per cycle — 1 in the paper's PIP; 2
    /// models a throughput-boosted PIP with two shifters and a doubled
    /// adder tree per lane (the direction follow-up designs took).
    pub per_cycle: u8,
}

impl SchedulerConfig {
    /// The paper's scheduler: `L` first-stage bits, LSB first, one
    /// oneffset per lane per cycle.
    pub fn paper(l_bits: u8) -> Self {
        Self { l_bits, order: ScanOrder::LsbFirst, per_cycle: 1 }
    }
}

/// Schedules one brick: `masks[lane]` holds the lane's remaining powers as
/// a bit set (bit `k` set means a pending oneffset `2^k`). Plain oneffset
/// encoding passes the neuron value itself; CSD passes the recoded power
/// set (signs do not affect timing).
///
/// `l_bits` is the first-stage shifter width `L`; lanes can absorb a
/// difference of up to `2^L − 1` from the cycle's minimum.
pub fn schedule_brick(masks: &[u32; 16], l_bits: u8) -> ColumnSchedule {
    schedule_brick_with(masks, SchedulerConfig::paper(l_bits))
}

/// Schedules one brick under an explicit [`SchedulerConfig`].
///
/// Dispatches to a branchless fast path for the paper configuration
/// (LSB-first scan, one oneffset per lane per cycle); every other
/// configuration runs the general loop, which is also retained as
/// [`schedule_brick_oracle`] — the property-tested reference the fast
/// path is checked against.
pub fn schedule_brick_with(masks: &[u32; 16], cfg: SchedulerConfig) -> ColumnSchedule {
    assert!(cfg.per_cycle >= 1, "lanes must consume at least one oneffset per cycle");
    if cfg.order == ScanOrder::LsbFirst && cfg.per_cycle == 1 {
        return schedule_brick_fast(masks, cfg.l_bits);
    }
    schedule_brick_oracle(masks, cfg)
}

/// Branchless scheduler for the paper's PIP (LSB first, one oneffset per
/// lane per cycle).
///
/// The column control's per-cycle work collapses to bit operations: the
/// anchor is one `trailing_zeros` on the union-OR of the lane masks
/// (instead of a 16-lane min scan), and each lane consumes its lowest
/// pending oneffset exactly when that bit lands inside the anchored
/// window — `low & window_mask` is the bit itself or zero, so an XOR
/// clears it without a branch. Terms are conserved by construction, so
/// the total popcount is counted once up front.
fn schedule_brick_fast(masks: &[u32; 16], l_bits: u8) -> ColumnSchedule {
    let mut masks = *masks;
    let mut union = 0u32;
    let mut terms = 0u32;
    for &m in &masks {
        union |= m;
        terms += m.count_ones();
    }
    let span = 1u32 << l_bits; // window width in bit positions
    let window_ones = if span >= 32 { u32::MAX } else { (1u32 << span) - 1 };
    let mut cycles = 0u32;
    while union != 0 {
        let window_mask = window_ones << union.trailing_zeros();
        let mut next_union = 0u32;
        for m in &mut masks {
            let low = *m & m.wrapping_neg();
            *m ^= low & window_mask;
            next_union |= *m;
        }
        union = next_union;
        cycles += 1;
    }
    ColumnSchedule { cycles, terms, idle_lane_cycles: cycles * 16 - terms }
}

/// The general column scheduler — the direct transcription of the §V-D
/// control rule for any [`SchedulerConfig`]. Kept public as the oracle
/// that property tests and the `micro` bench compare the fast path
/// against.
pub fn schedule_brick_oracle(masks: &[u32; 16], cfg: SchedulerConfig) -> ColumnSchedule {
    assert!(cfg.per_cycle >= 1, "lanes must consume at least one oneffset per cycle");
    let window = 1u32 << cfg.l_bits;
    let mut masks = *masks;
    let mut cycles = 0u32;
    let mut terms = 0u32;
    loop {
        // The column control picks the anchor among pending oneffsets.
        let mut anchor = match cfg.order {
            ScanOrder::LsbFirst => u32::MAX,
            ScanOrder::MsbFirst => 0,
        };
        let mut any = false;
        for &m in &masks {
            if m != 0 {
                any = true;
                anchor = match cfg.order {
                    ScanOrder::LsbFirst => anchor.min(m.trailing_zeros()),
                    ScanOrder::MsbFirst => anchor.max(31 - m.leading_zeros()),
                };
            }
        }
        if !any {
            break;
        }
        for m in &mut masks {
            for _ in 0..cfg.per_cycle {
                if *m == 0 {
                    break;
                }
                let (cur, in_window) = match cfg.order {
                    ScanOrder::LsbFirst => {
                        let cur = m.trailing_zeros();
                        (cur, cur - anchor < window)
                    }
                    ScanOrder::MsbFirst => {
                        let cur = 31 - m.leading_zeros();
                        (cur, anchor - cur < window)
                    }
                };
                if !in_window {
                    break;
                }
                *m &= !(1 << cur);
                terms += 1;
            }
        }
        cycles += 1;
    }
    ColumnSchedule {
        cycles,
        terms,
        idle_lane_cycles: cycles * 16 * u32::from(cfg.per_cycle) - terms,
    }
}

/// Convenience: schedules a brick of plain neuron values under oneffset
/// encoding.
pub fn schedule_values(values: &[u16; 16], l_bits: u8) -> ColumnSchedule {
    let mut masks = [0u32; 16];
    for (m, &v) in masks.iter_mut().zip(values) {
        *m = u32::from(v);
    }
    schedule_brick(&masks, l_bits)
}

/// Power-set mask of the CSD recoding of `v` (for the encoding ablation).
/// Delegates to the allocation-free [`pra_fixed::csd::mask`].
pub fn csd_mask(v: u16) -> u32 {
    pra_fixed::csd::mask(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_brick_takes_no_cycles() {
        let s = schedule_values(&[0u16; 16], 2);
        assert_eq!(s, ColumnSchedule::default());
    }

    #[test]
    fn single_lane_pays_its_popcount() {
        let mut vals = [0u16; 16];
        vals[3] = 0b1011_0001;
        let s = schedule_values(&vals, 4);
        // Single-stage: any difference is absorbed, but a lane still
        // consumes one oneffset per cycle.
        assert_eq!(s.cycles, 4);
        assert_eq!(s.terms, 4);
    }

    #[test]
    fn identical_lanes_never_stall() {
        let vals = [0b0101_0101u16; 16];
        for l in 0..=4 {
            let s = schedule_values(&vals, l);
            assert_eq!(s.cycles, 4, "L={l}");
            assert_eq!(s.terms, 64);
        }
    }

    #[test]
    fn worst_case_is_the_representation_width() {
        let vals = [u16::MAX; 16];
        for l in 0..=4 {
            assert_eq!(schedule_values(&vals, l).cycles, 16, "L={l}");
        }
    }

    #[test]
    fn cycles_never_exceed_16_for_16bit_values() {
        // Adversarial spread: disjoint offsets across lanes.
        let mut vals = [0u16; 16];
        for (i, v) in vals.iter_mut().enumerate() {
            *v = 1 << i;
        }
        for l in 0..=4 {
            let s = schedule_values(&vals, l);
            assert!(s.cycles <= 16, "L={l} cycles={}", s.cycles);
        }
        // L=0 processes one distinct offset per cycle.
        assert_eq!(schedule_values(&vals, 0).cycles, 16);
        // Single-stage absorbs everything in one cycle.
        assert_eq!(schedule_values(&vals, 4).cycles, 1);
    }

    #[test]
    fn larger_l_never_slower() {
        // Pseudo-random bricks; monotonicity in L.
        let mut state = 0x1234_5678_9ABC_DEF0u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 48) as u16
        };
        for _ in 0..200 {
            let mut vals = [0u16; 16];
            for v in &mut vals {
                *v = next();
            }
            let mut prev = u32::MAX;
            for l in 0..=4 {
                let c = schedule_values(&vals, l).cycles;
                assert!(c <= prev, "L={l}: {c} > {prev} for {vals:?}");
                prev = c;
            }
        }
    }

    #[test]
    fn fig7_rule_stalls_large_differences() {
        // Three lanes (others idle), L=2, mirroring Fig. 7b's narrative:
        // in cycle 1 the minimum is 0; a lane whose pending oneffset is 4
        // cannot absorb 4-0 with a 2-bit first stage and stalls.
        let mut vals = [0u16; 16];
        vals[0] = (1 << 1) | (1 << 5); // oneffsets 1, 5
        vals[1] = (1 << 0) | (1 << 7); // oneffsets 0, 7
        vals[2] = (1 << 4) | (1 << 8); // oneffsets 4, 8
        let s = schedule_values(&vals, 2);
        // cycle 1: min 0 -> lanes 0 (diff 1) and 1 (diff 0) consume; lane 2
        //          (diff 4) stalls.
        // cycle 2: pending (5, 7, 4), min 4 -> diffs (1, 3, 0): all consume.
        // cycle 3: pending (-, -, 8): lane 2 consumes its last oneffset.
        assert_eq!(s.cycles, 3);
        assert_eq!(s.terms, 6);
        // Single-stage needs only max-popcount cycles.
        assert_eq!(schedule_values(&vals, 4).cycles, 2);
    }

    #[test]
    fn terms_equal_total_popcount() {
        let vals: [u16; 16] = [3, 0, 0xFFFF, 17, 0b1010, 9, 0, 1, 2, 4, 8, 0x8000, 0x00F0, 5, 6, 7];
        let pop: u32 = vals.iter().map(|v| v.count_ones()).sum();
        for l in 0..=4 {
            assert_eq!(schedule_values(&vals, l).terms, pop, "L={l}");
        }
    }

    #[test]
    fn idle_lane_cycles_accounting() {
        let mut vals = [0u16; 16];
        vals[0] = 0b111; // 3 oneffsets, 3 cycles; 15 lanes idle throughout
        let s = schedule_values(&vals, 2);
        assert_eq!(s.cycles, 3);
        assert_eq!(s.idle_lane_cycles, 3 * 16 - 3);
    }

    #[test]
    fn msb_first_round_trips_all_terms() {
        let vals: [u16; 16] = std::array::from_fn(|i| (i as u16).wrapping_mul(2477) ^ 0x1234);
        let pop: u32 = vals.iter().map(|v| v.count_ones()).sum();
        let mut masks = [0u32; 16];
        for (m, &v) in masks.iter_mut().zip(&vals) {
            *m = u32::from(v);
        }
        for l in 0..=4 {
            let cfg = SchedulerConfig { l_bits: l, order: ScanOrder::MsbFirst, per_cycle: 1 };
            let s = schedule_brick_with(&masks, cfg);
            assert_eq!(s.terms, pop, "L={l}");
            assert!(s.cycles <= 16, "L={l}");
        }
    }

    #[test]
    fn orders_agree_at_single_stage() {
        // With L = 4 every pending oneffset is within any anchor's window:
        // both orders take max-popcount cycles.
        let vals: [u16; 16] = std::array::from_fn(|i| 0xACE1u16.rotate_left(i as u32));
        let mut masks = [0u32; 16];
        for (m, &v) in masks.iter_mut().zip(&vals) {
            *m = u32::from(v);
        }
        let lsb = schedule_brick_with(&masks, SchedulerConfig::paper(4));
        let msb = schedule_brick_with(
            &masks,
            SchedulerConfig { l_bits: 4, order: ScanOrder::MsbFirst, per_cycle: 1 },
        );
        assert_eq!(lsb.cycles, msb.cycles);
        let max_pop = vals.iter().map(|v| v.count_ones()).max().unwrap();
        assert_eq!(lsb.cycles, max_pop);
    }

    #[test]
    fn two_per_cycle_halves_identical_lanes() {
        let vals = [0xFFFFu16; 16];
        let mut masks = [0u32; 16];
        for (m, &v) in masks.iter_mut().zip(&vals) {
            *m = u32::from(v);
        }
        let cfg = SchedulerConfig { l_bits: 4, order: ScanOrder::LsbFirst, per_cycle: 2 };
        let s = schedule_brick_with(&masks, cfg);
        assert_eq!(s.cycles, 8);
        assert_eq!(s.terms, 256);
    }

    #[test]
    fn per_cycle_monotone() {
        let vals: [u16; 16] = std::array::from_fn(|i| (0x9E37u16).wrapping_mul(i as u16 + 1));
        let mut masks = [0u32; 16];
        for (m, &v) in masks.iter_mut().zip(&vals) {
            *m = u32::from(v);
        }
        let mut prev = u32::MAX;
        for k in 1..=4u8 {
            let cfg = SchedulerConfig { l_bits: 2, order: ScanOrder::LsbFirst, per_cycle: k };
            let c = schedule_brick_with(&masks, cfg).cycles;
            assert!(c <= prev, "k={k}: {c} > {prev}");
            prev = c;
        }
    }

    #[test]
    fn multi_consumption_respects_window() {
        // One lane with offsets {0, 1, 9}: at L=2 and 2/cycle, the lane
        // takes 0 and 1 in cycle one but must wait for 9.
        let mut masks = [0u32; 16];
        masks[0] = (1 << 0) | (1 << 1) | (1 << 9);
        let cfg = SchedulerConfig { l_bits: 2, order: ScanOrder::LsbFirst, per_cycle: 2 };
        let s = schedule_brick_with(&masks, cfg);
        assert_eq!(s.cycles, 2);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_per_cycle_rejected() {
        let _ = schedule_brick_with(
            &[0u32; 16],
            SchedulerConfig { l_bits: 2, order: ScanOrder::LsbFirst, per_cycle: 0 },
        );
    }

    #[test]
    fn fast_path_matches_oracle_on_pseudo_random_bricks() {
        let mut state = 0xDEAD_BEEF_0BAD_F00Du64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 48) as u16
        };
        for l in 0..=4u8 {
            for _ in 0..200 {
                let mut masks = [0u32; 16];
                for m in &mut masks {
                    *m = u32::from(next());
                }
                let cfg = SchedulerConfig::paper(l);
                assert_eq!(
                    schedule_brick_with(&masks, cfg),
                    schedule_brick_oracle(&masks, cfg),
                    "L={l} masks={masks:?}"
                );
            }
        }
    }

    #[test]
    fn csd_mask_strictly_sparser_on_runs() {
        let m = csd_mask(0b0111_1111); // 127 = 128 - 1
        assert_eq!(m.count_ones(), 2);
        assert!(m & (1 << 7) != 0);
        assert!(m & 1 != 0);
    }

    #[test]
    fn csd_scheduling_can_beat_oneffsets() {
        let vals = [0x7FFFu16; 16]; // 15 ones -> CSD: 2 terms
        let one = schedule_values(&vals, 2);
        let mut masks = [0u32; 16];
        for (m, &v) in masks.iter_mut().zip(&vals) {
            *m = csd_mask(v);
        }
        let csd = schedule_brick(&masks, 2);
        assert!(csd.cycles < one.cycles);
        assert_eq!(csd.terms, 32);
    }
}
