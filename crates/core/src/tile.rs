//! Tile-level synchronization (§V-A4, §V-E, Fig. 8).
//!
//! A Pragmatic tile is a 16×16 array of PIPs: PIP(i, j) processes an
//! oneffset from the j-th window with a synapse from the i-th filter. All
//! PIPs along a column share one neuron brick and advance together; how
//! *columns* synchronize with each other is the design choice this module
//! models:
//!
//! * **Per-pallet** — every column waits for the slowest before the tile
//!   moves to the next brick step; one SB read per step, trivially the
//!   same SB traffic as DaDianNao.
//! * **Per-column** — columns advance independently. Synapse sets are
//!   buffered in SSRs (synapse set registers) in front of the SB; a set
//!   stays in its SSR until all active columns have copied it (a 4-bit
//!   down counter in hardware), which guarantees each set is read from SB
//!   exactly once. Only one SB read can proceed per cycle; columns that
//!   need a set that is neither buffered nor fetchable this cycle stall.
//! * **Per-column ideal** — unbounded SSRs, no port conflicts: the
//!   `perCol-ideal` upper bound.
//!
//! Every brick step costs at least one cycle even if all its neurons are
//! zero: the column must still latch the synapse set (and, under
//! per-column sync, tick the SSR down counter).

use serde::{Deserialize, Serialize};

/// Per-pallet outcome of one synchronization policy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PalletOutcome {
    /// Cycles the tile spent on this pallet.
    pub cycles: u64,
    /// Cycles lost waiting for NM pallet fetches (per-pallet sync only;
    /// §V-A4's `max(NMC, PC)` rule).
    pub nm_stall_cycles: u64,
    /// Cycles columns spent stalled on SSR availability or the SB port
    /// (per-column sync only), summed over columns.
    pub sb_stall_cycles: u64,
    /// SB set reads issued for this pallet (per filter group).
    pub sb_set_reads: u64,
}

/// Per-pallet synchronization: each brick step costs the maximum column
/// cycle count (min 1), overlapped with the step's NM fetch.
///
/// `col_cycles[step][column]` holds each column's schedule length;
/// `nmc[step]` the NM rows needed to fetch that step's bricks.
pub fn pallet_sync(col_cycles: &[[u32; 16]], nmc: &[u64]) -> PalletOutcome {
    assert_eq!(col_cycles.len(), nmc.len(), "one NMC per brick step");
    let mut out = PalletOutcome::default();
    for (cols, &fetch) in col_cycles.iter().zip(nmc) {
        let compute = u64::from(*cols.iter().max().expect("16 columns")).max(1);
        let cost = compute.max(fetch);
        out.cycles += cost;
        out.nm_stall_cycles += cost - compute;
        out.sb_set_reads += 1;
    }
    out
}

/// Per-column synchronization with `ssrs` synapse set registers, or the
/// ideal variant when `ssrs` is `None`.
///
/// `col_cycles[step][column]`; `active` is the number of live window
/// lanes (ragged pallets at row ends have fewer than 16).
pub fn column_sync(col_cycles: &[[u32; 16]], active: usize, ssrs: Option<usize>) -> PalletOutcome {
    let steps = col_cycles.len();
    let mut out = PalletOutcome { sb_set_reads: steps as u64, ..Default::default() };
    if steps == 0 || active == 0 {
        out.sb_set_reads = 0;
        return out;
    }

    let Some(ssr_count) = ssrs else {
        // Ideal: every column fully independent.
        let mut worst = 0u64;
        for c in 0..active {
            let total: u64 = col_cycles.iter().map(|s| u64::from(s[c]).max(1)).sum();
            worst = worst.max(total);
        }
        out.cycles = worst;
        return out;
    };
    assert!(ssr_count >= 1, "per-column sync needs at least one SSR");

    #[derive(Clone, Copy)]
    struct Ssr {
        step: usize,
        copied: u16,
    }
    let all_copied = ((1u32 << active) - 1) as u16;
    let mut pool: Vec<Option<Ssr>> = vec![None; ssr_count];
    let mut step_idx = [0usize; 16];
    let mut remaining = [0u32; 16];
    let mut cycles = 0u64;
    let mut stalls = 0u64;

    loop {
        if (0..active).all(|c| step_idx[c] >= steps) {
            break;
        }
        let mut sb_port_free = true;
        for c in 0..active {
            if step_idx[c] >= steps {
                continue;
            }
            if remaining[c] == 0 {
                let want = step_idx[c];
                // Copy from an SSR that already holds the set...
                let have = pool.iter_mut().flatten().find(|e| e.step == want);
                if let Some(e) = have {
                    e.copied |= 1 << c;
                    remaining[c] = col_cycles[want][c].max(1);
                } else if sb_port_free {
                    // ...or read it from SB into a free SSR (empty, or one
                    // whose set every active column has copied).
                    let slot = pool.iter_mut().find(|s| {
                        s.is_none() || s.as_ref().is_some_and(|e| e.copied == all_copied)
                    });
                    if let Some(slot) = slot {
                        *slot = Some(Ssr { step: want, copied: 1 << c });
                        sb_port_free = false;
                        remaining[c] = col_cycles[want][c].max(1);
                    } else {
                        stalls += 1;
                        continue;
                    }
                } else {
                    stalls += 1;
                    continue;
                }
            }
            remaining[c] -= 1;
            if remaining[c] == 0 {
                step_idx[c] += 1;
            }
        }
        cycles += 1;
    }
    out.cycles = cycles;
    out.sb_stall_cycles = stalls;
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn steps(rows: &[[u32; 16]]) -> Vec<[u32; 16]> {
        rows.to_vec()
    }

    #[test]
    fn pallet_sync_pays_the_slowest_column() {
        let mut s = [[1u32; 16]; 1];
        s[0][5] = 7;
        let out = pallet_sync(&steps(&s), &[0]);
        assert_eq!(out.cycles, 7);
    }

    #[test]
    fn pallet_sync_minimum_one_cycle_per_step() {
        let s = [[0u32; 16]; 3];
        let out = pallet_sync(&steps(&s), &[0, 0, 0]);
        assert_eq!(out.cycles, 3);
    }

    #[test]
    fn pallet_sync_nm_stall_when_fetch_dominates() {
        let s = [[2u32; 16]; 1];
        let out = pallet_sync(&steps(&s), &[5]);
        assert_eq!(out.cycles, 5);
        assert_eq!(out.nm_stall_cycles, 3);
    }

    #[test]
    fn ideal_column_sync_is_worst_column_sum() {
        let mut a = [[1u32; 16]; 4];
        for (i, s) in a.iter_mut().enumerate() {
            s[3] = 2 + i as u32; // column 3: 2+3+4+5 = 14
        }
        let out = column_sync(&a, 16, None);
        assert_eq!(out.cycles, 14);
    }

    #[test]
    fn column_sync_with_many_ssrs_matches_ideal_plus_port_effects() {
        // Uniform work: columns never diverge, so SSR count is irrelevant.
        let s = [[3u32; 16]; 5];
        let ideal = column_sync(&s, 16, None).cycles;
        let real = column_sync(&s, 16, Some(16)).cycles;
        assert_eq!(real, ideal);
    }

    #[test]
    fn one_ssr_forces_lockstep_at_set_boundaries() {
        // Column 0 is fast (1 cycle/step), column 1 slow (9 cycles/step).
        // With one SSR, column 0 cannot run ahead: the next set cannot be
        // loaded until the slow column copies the current one.
        let mut s = [[1u32; 16]; 3];
        for row in &mut s {
            row[1] = 9;
        }
        let one = column_sync(&s, 2, Some(1)).cycles;
        let ideal = column_sync(&s, 2, None).cycles;
        assert_eq!(ideal, 27);
        // Lockstep at set granularity behaves like pallet sync: 3 steps x 9.
        assert!(one >= 27, "one-SSR {one}");
        assert!(one <= 3 * 9 + 3, "one-SSR {one} too slow");
    }

    #[test]
    fn more_ssrs_never_slower() {
        // Irregular work pattern.
        let mut s = vec![[1u32; 16]; 8];
        for (i, row) in s.iter_mut().enumerate() {
            for (c, v) in row.iter_mut().enumerate() {
                *v = 1 + ((i * 7 + c * 3) % 9) as u32;
            }
        }
        let mut prev = u64::MAX;
        for ssrs in [1usize, 2, 4, 8, 16] {
            let c = column_sync(&s, 16, Some(ssrs)).cycles;
            assert!(c <= prev, "{ssrs} SSRs: {c} > {prev}");
            prev = c;
        }
        let ideal = column_sync(&s, 16, None).cycles;
        assert!(ideal <= prev);
    }

    #[test]
    fn per_column_never_slower_than_pallet_sync() {
        let mut s = vec![[1u32; 16]; 6];
        for (i, row) in s.iter_mut().enumerate() {
            for (c, v) in row.iter_mut().enumerate() {
                *v = 1 + ((i * 5 + c * 11) % 7) as u32;
            }
        }
        let pallet = pallet_sync(&s, &[0; 6]).cycles;
        for ssrs in [1usize, 4, 16] {
            let col = column_sync(&s, 16, Some(ssrs)).cycles;
            assert!(col <= pallet, "{ssrs} SSRs: {col} > pallet {pallet}");
        }
    }

    #[test]
    fn fig8_example_one_extra_register_two_windows() {
        // Fig. 8: a 1x2 PIP array (two windows), one SSR, bricks 0..2 with
        // max oneffset counts (2, 4, 4) for window 0 and (5, 2, 2) for
        // window 1. The figure walks cycles 1-8: both columns copy set 0
        // in cycle 1; column 0 finishes brick 0 at cycle 2 and copies set
        // 1 (read in cycle 3); column 1 finishes brick 0 at cycle 5 and
        // copies set 1 from the SSR; etc.
        let sched = vec![
            {
                let mut r = [0u32; 16];
                r[0] = 2;
                r[1] = 5;
                r
            },
            {
                let mut r = [0u32; 16];
                r[0] = 4;
                r[1] = 2;
                r
            },
            {
                let mut r = [0u32; 16];
                r[0] = 4;
                r[1] = 2;
                r
            },
        ];
        let out = column_sync(&sched, 2, Some(1));
        // Column 0's path: 2 + 4 + 4 = 10 cycles of work; column 1's:
        // 5 + 2 + 2 = 9, but column 1 cannot copy set 2 until... with one
        // SSR the critical path lands within a couple cycles of the
        // figure's 10-cycle walk.
        assert!(out.cycles >= 10, "cycles {}", out.cycles);
        assert!(out.cycles <= 12, "cycles {}", out.cycles);
        // Exactly one SB read per set.
        assert_eq!(out.sb_set_reads, 3);
    }

    #[test]
    fn sb_reads_equal_sets_regardless_of_ssrs() {
        // §V-E: "This policy guarantees that the SB is accessed the same
        // number of times as in DaDN."
        let s = vec![[2u32; 16]; 7];
        for ssrs in [1usize, 2, 16] {
            assert_eq!(column_sync(&s, 16, Some(ssrs)).sb_set_reads, 7);
        }
        assert_eq!(pallet_sync(&s, &[0; 7]).sb_set_reads, 7);
    }

    #[test]
    fn inactive_columns_do_not_hold_ssrs() {
        // Only 4 active columns: the SSR frees as soon as those 4 copied
        // it, so uniform single-cycle steps proceed in lockstep.
        let s = vec![[1u32; 16]; 4];
        let out = column_sync(&s, 4, Some(1));
        assert_eq!(out.cycles, 4);
    }

    #[test]
    fn empty_pallet_is_free() {
        let out = column_sync(&[], 16, Some(1));
        assert_eq!(out.cycles, 0);
        assert_eq!(out.sb_set_reads, 0);
    }
}
