//! Layer- and network-level Pragmatic simulation.
//!
//! For every (filter group × pallet × brick step) the simulator runs the
//! exact column scheduler over the 16 oneffset lanes of each of the 16
//! window columns, then combines columns according to the configured
//! synchronization policy. Tiles are identical by construction (§V-A3), so
//! one tile is simulated and the filter-group count scales the result.

use pra_engines::shared_traffic;
use pra_sim::{ChipConfig, Dispatcher, LayerResult, NeuronMemory, RunResult};
use pra_tensor::brick::{brick_steps, fetch_pallet_step, pallets, PalletRef};
use pra_tensor::{BRICK, PALLET};
use pra_workloads::{LayerWorkload, NetworkWorkload};

use crate::column::{csd_mask, schedule_brick_with, ColumnSchedule};
use crate::config::{Encoding, Fidelity, PraConfig, SyncPolicy};
use crate::tile::{column_sync, pallet_sync, PalletOutcome};

/// Simulates one layer on the configured Pragmatic design point.
pub fn simulate_layer(cfg: &PraConfig, layer: &LayerWorkload) -> LayerResult {
    let spec = &layer.spec;
    let chip = &cfg.chip;
    let nm = NeuronMemory::new(cfg.nm_layout, chip.nm_row_neurons(cfg.repr.bits()));
    let dispatcher = Dispatcher::new(nm);
    let steps = brick_steps(spec);
    let all_pallets = pallets(spec);
    let fg = chip.filter_groups(spec.num_filters) as u64;

    // Deterministic pallet sampling for bounded simulation time.
    let (selected, total, sampled): (Vec<PalletRef>, u64, u64) = match cfg.fidelity {
        Fidelity::Full => {
            let n = all_pallets.len() as u64;
            (all_pallets, n, n)
        }
        Fidelity::Sampled { max_pallets } => {
            let n = all_pallets.len();
            let take = max_pallets.max(1).min(n);
            // Multiplicative sampling with a step coprime to the pallet
            // count: a plain stride correlates with the row structure
            // (e.g. it can hit only the full 16-lane pallet of every row,
            // never the ragged one) and biases the estimate.
            let mut g = (n as f64 * 0.618_033_988) as usize | 1;
            while gcd(g, n) != 1 {
                g += 2;
            }
            let sel: Vec<PalletRef> = (0..take).map(|k| all_pallets[k * g % n]).collect();
            (sel, n as u64, take as u64)
        }
    };

    let mut cycles = 0u64;
    let mut nm_stalls = 0u64;
    let mut sb_stalls = 0u64;
    let mut oneffsets = 0u64;
    let mut col_cycles_buf: Vec<[u32; 16]> = Vec::with_capacity(steps.len());
    let mut nmc_buf: Vec<u64> = Vec::with_capacity(steps.len());

    for pallet in &selected {
        col_cycles_buf.clear();
        nmc_buf.clear();
        for step in &steps {
            let bricks = fetch_pallet_step(spec, &layer.neurons, *pallet, *step);
            let mut per_col = [0u32; 16];
            for (col, brick) in bricks.iter().enumerate().take(pallet.lanes) {
                let sched = schedule_column(cfg, layer, brick);
                per_col[col] = sched.cycles;
                oneffsets += u64::from(sched.terms);
            }
            col_cycles_buf.push(per_col);
            nmc_buf.push(dispatcher.fetch_cycles(spec, *pallet, *step));
        }
        let outcome: PalletOutcome = match cfg.sync {
            SyncPolicy::PerPallet => pallet_sync(&col_cycles_buf, &nmc_buf),
            SyncPolicy::PerColumn { ssrs } => {
                column_sync(&col_cycles_buf, pallet.lanes, Some(ssrs))
            }
            SyncPolicy::PerColumnIdeal => column_sync(&col_cycles_buf, pallet.lanes, None),
        };
        cycles += outcome.cycles;
        nm_stalls += outcome.nm_stall_cycles;
        sb_stalls += outcome.sb_stall_cycles;
    }

    // Scale the sampled pallets to the full layer, then by filter groups.
    let scale = |v: u64| (v as u128 * total as u128 / sampled.max(1) as u128) as u64;
    let cycles = scale(cycles) * fg;
    let nm_stalls = scale(nm_stalls) * fg;
    let sb_stalls = scale(sb_stalls) * fg;
    let oneffsets = scale(oneffsets);

    let mut counters = shared_traffic(chip, spec, &dispatcher);
    // Each neuron oneffset pairs with every filter's synapse: terms =
    // oneffsets × N (spread across the 16 filter lanes × 16 tiles × groups).
    counters.terms = oneffsets * spec.num_filters as u64;
    counters.stall_cycles = nm_stalls + sb_stalls;
    // Null terms injected: tile lane-cycles not consuming an oneffset
    // (each consumed oneffset occupies one of the tile's 256 lanes for one
    // cycle, repeated per filter group).
    let lane_cycles = cycles * (PALLET * BRICK) as u64;
    counters.idle_lane_cycles = lane_cycles.saturating_sub(oneffsets * fg);
    LayerResult {
        layer: spec.name().to_string(),
        cycles,
        multiplications: spec.multiplications(),
        counters,
    }
}

fn gcd(mut a: usize, mut b: usize) -> usize {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

fn schedule_column(cfg: &PraConfig, layer: &LayerWorkload, brick: &[u16; BRICK]) -> ColumnSchedule {
    let mut masks = [0u32; 16];
    for (m, &v) in masks.iter_mut().zip(brick) {
        let v = if cfg.software_trim { layer.window.trim(v) } else { v };
        *m = match cfg.encoding {
            Encoding::Oneffset => u32::from(v),
            Encoding::Csd => csd_mask(v),
        };
    }
    schedule_brick_with(&masks, cfg.scheduler())
}

/// Simulates a network's convolutional layers on the configured design
/// point, labelled with [`PraConfig::label`].
pub fn run(cfg: &PraConfig, workload: &NetworkWorkload) -> RunResult {
    assert_eq!(cfg.repr, workload.repr, "configuration representation must match the workload");
    let mut result = RunResult::new(cfg.label());
    for layer in &workload.layers {
        result.layers.push(simulate_layer(cfg, layer));
    }
    result
}

/// DaDianNao cycles for the same chip structure — a convenience re-export
/// used when computing speedups.
pub fn dadn_baseline(chip: &ChipConfig, workload: &NetworkWorkload) -> RunResult {
    pra_engines::dadn::run(chip, workload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pra_fixed::PrecisionWindow;
    use pra_tensor::{ConvLayerSpec, Tensor3};
    use pra_workloads::Representation;

    fn toy_layer(fill: impl FnMut(usize, usize, usize) -> u16) -> LayerWorkload {
        let spec = ConvLayerSpec::new("toy", (32, 8, 32), (3, 3), 64, 1, 1).unwrap();
        LayerWorkload {
            neurons: Tensor3::from_fn(spec.input, fill),
            spec,
            window: PrecisionWindow::with_width(9, 2),
            stripes_precision: 9,
        }
    }

    fn dadn_cycles(layer: &LayerWorkload) -> u64 {
        pra_engines::dadn::layer_cycles(&ChipConfig::dadn(), layer)
    }

    fn unpadded_layer(fill: impl FnMut(usize, usize, usize) -> u16) -> LayerWorkload {
        let spec = ConvLayerSpec::new("toy", (34, 10, 32), (3, 3), 64, 1, 0).unwrap();
        LayerWorkload {
            neurons: Tensor3::from_fn(spec.input, fill),
            spec,
            window: PrecisionWindow::with_width(9, 2),
            stripes_precision: 9,
        }
    }

    #[test]
    fn worst_case_matches_dadn() {
        // All bits set: every neuron has 16 oneffsets -> every brick step
        // takes 16 cycles, exactly DaDN's per-window rate (16 windows in
        // parallel). Unpadded layer: with padding PRA is *faster* than
        // DaDN even in the worst case, because all-padding brick steps
        // cost one cycle instead of sixteen.
        let layer = unpadded_layer(|_, _, _| u16::MAX);
        let cfg = PraConfig::single_stage(Representation::Fixed16).with_trim(false);
        let r = simulate_layer(&cfg, &layer);
        assert_eq!(r.cycles, dadn_cycles(&layer));
    }

    #[test]
    fn padding_makes_worst_case_strictly_faster_than_dadn() {
        let layer = toy_layer(|_, _, _| u16::MAX);
        let cfg = PraConfig::single_stage(Representation::Fixed16).with_trim(false);
        let r = simulate_layer(&cfg, &layer);
        assert!(r.cycles < dadn_cycles(&layer));
    }

    #[test]
    fn sparse_layers_run_much_faster() {
        let layer = toy_layer(|x, y, i| if (x + y + i) % 8 == 0 { 0b100 } else { 0 });
        let cfg = PraConfig::single_stage(Representation::Fixed16);
        let r = simulate_layer(&cfg, &layer);
        assert!(r.cycles * 8 < dadn_cycles(&layer), "cycles {}", r.cycles);
    }

    #[test]
    fn never_slower_than_dadn_on_aligned_layers() {
        let layer = toy_layer(|x, y, i| (x * 31 + y * 17 + i * 13) as u16);
        for l in 0..=4 {
            let cfg = PraConfig::two_stage(l, Representation::Fixed16).with_trim(false);
            let r = simulate_layer(&cfg, &layer);
            assert!(r.cycles <= dadn_cycles(&layer), "L={l}");
        }
    }

    #[test]
    fn larger_l_never_slower_at_layer_scale() {
        let layer = toy_layer(|x, y, i| ((x * 131 + y * 241 + i * 37) % 4093) as u16);
        let mut prev = u64::MAX;
        for l in 0..=4 {
            let cfg = PraConfig::two_stage(l, Representation::Fixed16);
            let c = simulate_layer(&cfg, &layer).cycles;
            assert!(c <= prev, "L={l}: {c} > {prev}");
            prev = c;
        }
    }

    #[test]
    fn column_sync_not_slower_than_pallet_sync() {
        let layer = toy_layer(|x, y, i| ((x * 7 + y * 3 + i) % 600) as u16);
        let pallet = simulate_layer(&PraConfig::two_stage(2, Representation::Fixed16), &layer);
        for ssrs in [1usize, 4, 16] {
            let col = simulate_layer(&PraConfig::per_column(ssrs, Representation::Fixed16), &layer);
            assert!(
                col.cycles
                    <= pallet.cycles
                        + layer.spec.brick_steps() as u64 * layer.spec.pallets() as u64,
                "{ssrs} SSRs: {} vs pallet {}",
                col.cycles,
                pallet.cycles
            );
        }
        let ideal = simulate_layer(
            &PraConfig {
                sync: SyncPolicy::PerColumnIdeal,
                ..PraConfig::two_stage(2, Representation::Fixed16)
            },
            &layer,
        );
        assert!(ideal.cycles <= pallet.cycles);
    }

    #[test]
    fn trimming_removes_suffix_work() {
        // Values with suffix noise below the window: trimming speeds up.
        let layer = toy_layer(|x, y, i| (0b1_0000 | ((x + y + i) % 4)) as u16);
        let on = simulate_layer(&PraConfig::two_stage(2, Representation::Fixed16), &layer);
        let off = simulate_layer(
            &PraConfig::two_stage(2, Representation::Fixed16).with_trim(false),
            &layer,
        );
        assert!(on.cycles < off.cycles);
    }

    #[test]
    fn terms_match_potential_model() {
        // The cycle simulator's effectual term count equals the ideal
        // potential study's PRA term count (same values, same trimming).
        let layer = toy_layer(|x, y, i| ((x * 5 + y * 11 + i * 3) % 300) as u16);
        let cfg = PraConfig::two_stage(2, Representation::Fixed16).with_trim(false);
        let r = simulate_layer(&cfg, &layer);
        let t = pra_engines::potential::layer_terms(&layer, Representation::Fixed16, 1);
        assert_eq!(r.counters.terms, t.pra);
    }

    #[test]
    fn sampled_fidelity_approximates_full() {
        let layer = toy_layer(|x, y, i| ((x * 97 + y * 53 + i * 29) % 511) as u16);
        let full = simulate_layer(&PraConfig::two_stage(2, Representation::Fixed16), &layer);
        let sampled = simulate_layer(
            &PraConfig::two_stage(2, Representation::Fixed16)
                .with_fidelity(Fidelity::Sampled { max_pallets: 4 }),
            &layer,
        );
        let ratio = sampled.cycles as f64 / full.cycles as f64;
        assert!((0.8..1.2).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn csd_encoding_not_slower_on_dense_values() {
        let layer = toy_layer(|_, _, _| 0b0111_1111_0000);
        let one = simulate_layer(&PraConfig::two_stage(2, Representation::Fixed16), &layer);
        let csd = simulate_layer(
            &PraConfig {
                encoding: Encoding::Csd,
                ..PraConfig::two_stage(2, Representation::Fixed16)
            },
            &layer,
        );
        assert!(csd.cycles <= one.cycles);
    }

    #[test]
    fn quant8_worst_case_is_8_cycles_per_step() {
        let spec = ConvLayerSpec::new("q", (34, 10, 32), (3, 3), 64, 1, 0).unwrap();
        let layer = LayerWorkload {
            neurons: Tensor3::from_fn(spec.input, |_, _, _| 0xFF),
            spec,
            window: PrecisionWindow::new(7, 0),
            stripes_precision: 8,
        };
        let cfg = PraConfig::two_stage(3, Representation::Quant8);
        let r = simulate_layer(&cfg, &layer);
        let dadn = dadn_cycles(&layer);
        // 8 oneffsets per neuron vs DaDN's 1 cycle/brick-step/window with
        // 16-way window parallelism -> exactly half of DaDN's 16.
        assert_eq!(r.cycles, dadn / 2);
    }

    #[test]
    #[should_panic(expected = "must match")]
    fn run_rejects_mismatched_representation() {
        let w = pra_workloads::NetworkWorkload::build_with_model(
            pra_workloads::Network::AlexNet,
            Representation::Quant8,
            pra_workloads::ActivationModel {
                zero_frac: 0.5,
                sigma: 0.2,
                suffix_density: 0.0,
                outlier_prob: 0.0,
                dense_prob: 0.0,
                heavy_share: 0.0,
            },
            1,
        );
        let cfg = PraConfig::two_stage(2, Representation::Fixed16);
        let _ = run(&cfg, &w);
    }
}
