//! Layer- and network-level Pragmatic simulation.
//!
//! For every (filter group × pallet × brick step) the simulator runs the
//! exact column scheduler over the 16 oneffset lanes of each of the 16
//! window columns, then combines columns according to the configured
//! synchronization policy. Tiles are identical by construction (§V-A3), so
//! one tile is simulated and the filter-group count scales the result.
//!
//! The hot path is the layer-scoped pipeline of [`crate::schedule`]:
//! neurons are trimmed and encoded once per layer, each unique input brick
//! is scheduled once and memoized (overlapping convolution windows reuse
//! the entry instead of re-scheduling — a K×K-fold saving), and pallets
//! fan out across the thread pool with an order-preserving reduction, so
//! a single-layer request scales across cores. The pre-memoization
//! implementation is retained as [`simulate_layer_raw`], the
//! cycle-for-cycle oracle that tests and the `micro` bench compare
//! against.

use pra_engines::shared_traffic;
use pra_sim::{AccessCounters, ChipConfig, Dispatcher, LayerResult, NeuronMemory, RunResult};
use pra_tensor::brick::{brick_for, brick_steps, fetch_pallet_step, pallets, BrickStep, PalletRef};
use pra_tensor::{ConvLayerSpec, BRICK, PALLET};
use pra_workloads::{LayerView, LayerWorkload, NetworkWorkload};
use rayon::prelude::*;

use crate::column::{csd_mask, schedule_brick_with, ColumnSchedule};
use crate::config::{Encoding, Fidelity, PraConfig, SyncPolicy};
use crate::schedule::LayerScheduler;
use crate::shared::{PipelinedBuild, SharedEncodedNetwork};
use crate::tile::{column_sync, pallet_sync, PalletOutcome};

/// Simulates one layer on the configured Pragmatic design point.
pub fn simulate_layer(cfg: &PraConfig, layer: &LayerWorkload) -> LayerResult {
    simulate_layer_view(cfg, layer.view())
}

/// Simulates one borrowed layer (no neuron tensor clone) on the
/// configured design point, parallelizing across pallets.
pub fn simulate_layer_view(cfg: &PraConfig, layer: LayerView<'_>) -> LayerResult {
    simulate_layer_view_with(cfg, layer, true)
}

/// [`simulate_layer_view`] with explicit control over pallet-level
/// parallelism. Results are bit-identical either way (the reduction is
/// order-preserving and integer sums are associative); the knob exists so
/// the determinism test can pin that invariant down.
#[doc(hidden)]
pub fn simulate_layer_view_with(
    cfg: &PraConfig,
    layer: LayerView<'_>,
    parallel: bool,
) -> LayerResult {
    let sched = LayerScheduler::new(cfg, layer.window, layer.neurons);
    simulate_layer_sched(cfg, layer, &sched, None, parallel)
}

/// Simulates one borrowed layer against an externally-built (typically
/// shared) [`LayerScheduler`], optionally reusing precomputed NM/SB
/// traffic counters. Cycle-for-cycle identical to [`simulate_layer_view`]
/// when the scheduler was built for `cfg`'s encoding key, scheduler
/// parameters and the layer's window — [`SharedEncodedNetwork`] enforces
/// that pairing.
pub fn simulate_layer_shared(
    cfg: &PraConfig,
    layer: LayerView<'_>,
    sched: &LayerScheduler,
    traffic: Option<&AccessCounters>,
) -> LayerResult {
    simulate_layer_sched(cfg, layer, sched, traffic, true)
}

/// Shared core of the memoized simulation paths.
fn simulate_layer_sched(
    cfg: &PraConfig,
    layer: LayerView<'_>,
    sched: &LayerScheduler,
    traffic: Option<&AccessCounters>,
    parallel: bool,
) -> LayerResult {
    let spec = layer.spec;
    let dispatcher = layer_dispatcher(cfg);
    let steps = brick_steps(spec);
    let (selected, total, sampled) = select_pallets(cfg, spec);

    // Fan out only when each worker gets a meaningful slice: heavily
    // sampled runs (and tiny layers) stay serial, which avoids paying
    // thread spawn/join per layer for work that fits one core — and keeps
    // thread churn down when layer simulation runs nested inside an
    // already-parallel batch (the sweep driver's jobs).
    const MIN_PALLETS_PER_WORKER: usize = 8;
    let workers = if parallel {
        rayon::current_num_threads().min(selected.len() / MIN_PALLETS_PER_WORKER).max(1)
    } else {
        1
    };
    let totals = if workers > 1 {
        // Contiguous chunks, mapped in input order and summed in chunk
        // order: the same deterministic reduction the sweep driver pins
        // down for its job rows.
        let chunk = selected.len().div_ceil(workers);
        let parts: Vec<Totals> = selected
            .chunks(chunk)
            .collect::<Vec<_>>()
            .into_par_iter()
            .map(|c| simulate_pallets(cfg, spec, sched, &dispatcher, &steps, c))
            .collect();
        parts.into_iter().fold(Totals::default(), Totals::add)
    } else {
        simulate_pallets(cfg, spec, sched, &dispatcher, &steps, &selected)
    };
    let base = match traffic {
        Some(t) => *t,
        None => shared_traffic(&cfg.chip, spec, &dispatcher),
    };
    finish_layer(cfg, spec, base, totals, total, sampled)
}

/// Per-run accumulator, combined with an order-preserving fold.
#[derive(Debug, Default, Clone, Copy)]
struct Totals {
    cycles: u64,
    nm_stalls: u64,
    sb_stalls: u64,
    oneffsets: u64,
}

impl Totals {
    fn add(self, o: Totals) -> Totals {
        Totals {
            cycles: self.cycles + o.cycles,
            nm_stalls: self.nm_stalls + o.nm_stalls,
            sb_stalls: self.sb_stalls + o.sb_stalls,
            oneffsets: self.oneffsets + o.oneffsets,
        }
    }
}

fn layer_dispatcher(cfg: &PraConfig) -> Dispatcher {
    let nm = NeuronMemory::new(cfg.nm_layout, cfg.chip.nm_row_neurons(cfg.repr.bits()));
    Dispatcher::new(nm)
}

/// Deterministic pallet selection for bounded simulation time: the full
/// enumeration, or a multiplicatively-spaced sample of it.
fn select_pallets(cfg: &PraConfig, spec: &ConvLayerSpec) -> (Vec<PalletRef>, u64, u64) {
    let all_pallets = pallets(spec);
    match cfg.fidelity {
        Fidelity::Full => {
            let n = all_pallets.len() as u64;
            (all_pallets, n, n)
        }
        Fidelity::Sampled { max_pallets } => {
            let n = all_pallets.len();
            let take = max_pallets.max(1).min(n);
            // Multiplicative sampling with a step coprime to the pallet
            // count: a plain stride correlates with the row structure
            // (e.g. it can hit only the full 16-lane pallet of every row,
            // never the ragged one) and biases the estimate.
            let mut g = (n as f64 * 0.618_033_988) as usize | 1;
            while gcd(g, n) != 1 {
                g += 2;
            }
            let sel: Vec<PalletRef> = (0..take).map(|k| all_pallets[k * g % n]).collect();
            (sel, n as u64, take as u64)
        }
    }
}

/// Simulates a slice of pallets against the shared layer scheduler. The
/// two step-indexed buffers are sized once per call; the loop body itself
/// performs no heap allocation — brick schedules come from the memo and
/// NM fetch rows are counted on the stack.
fn simulate_pallets(
    cfg: &PraConfig,
    spec: &ConvLayerSpec,
    sched: &LayerScheduler,
    dispatcher: &Dispatcher,
    steps: &[BrickStep],
    pallets: &[PalletRef],
) -> Totals {
    let mut col_cycles_buf: Vec<[u32; 16]> = Vec::with_capacity(steps.len());
    let mut nmc_buf: Vec<u64> = Vec::with_capacity(steps.len());
    let mut t = Totals::default();
    for pallet in pallets {
        col_cycles_buf.clear();
        nmc_buf.clear();
        for step in steps {
            let mut per_col = [0u32; 16];
            for (col, slot) in per_col.iter_mut().enumerate().take(pallet.lanes) {
                let (cycles, terms) =
                    sched.brick_cycles_terms(brick_for(spec, *pallet, col, *step));
                *slot = cycles;
                t.oneffsets += u64::from(terms);
            }
            col_cycles_buf.push(per_col);
            nmc_buf.push(dispatcher.fetch_cycles(spec, *pallet, *step));
        }
        let outcome = sync_pallet(cfg, &col_cycles_buf, &nmc_buf, pallet.lanes);
        t.cycles += outcome.cycles;
        t.nm_stalls += outcome.nm_stall_cycles;
        t.sb_stalls += outcome.sb_stall_cycles;
    }
    t
}

fn sync_pallet(
    cfg: &PraConfig,
    col_cycles: &[[u32; 16]],
    nmc: &[u64],
    lanes: usize,
) -> PalletOutcome {
    match cfg.sync {
        SyncPolicy::PerPallet => pallet_sync(col_cycles, nmc),
        SyncPolicy::PerColumn { ssrs } => column_sync(col_cycles, lanes, Some(ssrs)),
        SyncPolicy::PerColumnIdeal => column_sync(col_cycles, lanes, None),
    }
}

/// Scales the accumulated totals from the sampled pallets to the full
/// layer and derives the traffic counters from the engine-independent
/// base — shared verbatim by the memoized and raw paths so they stay
/// cycle-for-cycle identical.
fn finish_layer(
    cfg: &PraConfig,
    spec: &ConvLayerSpec,
    base: AccessCounters,
    t: Totals,
    total: u64,
    sampled: u64,
) -> LayerResult {
    let fg = cfg.chip.filter_groups(spec.num_filters) as u64;
    let scale = |v: u64| (v as u128 * total as u128 / sampled.max(1) as u128) as u64;
    let cycles = scale(t.cycles) * fg;
    let nm_stalls = scale(t.nm_stalls) * fg;
    let sb_stalls = scale(t.sb_stalls) * fg;
    let oneffsets = scale(t.oneffsets);

    let mut counters = base;
    // Each neuron oneffset pairs with every filter's synapse: terms =
    // oneffsets × N (spread across the 16 filter lanes × 16 tiles × groups).
    counters.terms = oneffsets * spec.num_filters as u64;
    counters.stall_cycles = nm_stalls + sb_stalls;
    // Null terms injected: tile lane-cycles not consuming an oneffset
    // (each consumed oneffset occupies one of the tile's 256 lanes for one
    // cycle, repeated per filter group).
    let lane_cycles = cycles * (PALLET * BRICK) as u64;
    counters.idle_lane_cycles = lane_cycles.saturating_sub(oneffsets * fg);
    LayerResult {
        layer: spec.name().to_string(),
        cycles,
        multiplications: spec.multiplications(),
        counters,
    }
}

/// The pre-memoization simulator: fetches and schedules every brick once
/// per overlapping window, exactly as the hardware's dispatcher would
/// stream it. Kept as the oracle for the layer-scoped pipeline — results
/// must be cycle-for-cycle identical to [`simulate_layer`] — and as the
/// `micro` bench's raw baseline.
pub fn simulate_layer_raw(cfg: &PraConfig, layer: &LayerWorkload) -> LayerResult {
    let spec = &layer.spec;
    let dispatcher = layer_dispatcher(cfg);
    let steps = brick_steps(spec);
    let (selected, total, sampled) = select_pallets(cfg, spec);

    let mut t = Totals::default();
    let mut col_cycles_buf: Vec<[u32; 16]> = Vec::with_capacity(steps.len());
    let mut nmc_buf: Vec<u64> = Vec::with_capacity(steps.len());
    for pallet in &selected {
        col_cycles_buf.clear();
        nmc_buf.clear();
        for step in &steps {
            let bricks = fetch_pallet_step(spec, &layer.neurons, *pallet, *step);
            let mut per_col = [0u32; 16];
            for (col, brick) in bricks.iter().enumerate().take(pallet.lanes) {
                let sched = schedule_column(cfg, layer, brick);
                per_col[col] = sched.cycles;
                t.oneffsets += u64::from(sched.terms);
            }
            col_cycles_buf.push(per_col);
            nmc_buf.push(dispatcher.fetch_cycles(spec, *pallet, *step));
        }
        let outcome = sync_pallet(cfg, &col_cycles_buf, &nmc_buf, pallet.lanes);
        t.cycles += outcome.cycles;
        t.nm_stalls += outcome.nm_stall_cycles;
        t.sb_stalls += outcome.sb_stall_cycles;
    }
    finish_layer(cfg, spec, shared_traffic(&cfg.chip, spec, &dispatcher), t, total, sampled)
}

fn gcd(mut a: usize, mut b: usize) -> usize {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

fn schedule_column(cfg: &PraConfig, layer: &LayerWorkload, brick: &[u16; BRICK]) -> ColumnSchedule {
    let mut masks = [0u32; 16];
    for (m, &v) in masks.iter_mut().zip(brick) {
        let v = if cfg.software_trim { layer.window.trim(v) } else { v };
        *m = match cfg.encoding {
            Encoding::Oneffset => u32::from(v),
            Encoding::Csd => csd_mask(v),
        };
    }
    schedule_brick_with(&masks, cfg.scheduler())
}

/// Simulates a network's convolutional layers on the configured design
/// point, labelled with [`PraConfig::label`].
pub fn run(cfg: &PraConfig, workload: &NetworkWorkload) -> RunResult {
    assert_eq!(cfg.repr, workload.repr, "configuration representation must match the workload");
    let mut result = RunResult::new(cfg.label());
    for layer in &workload.layers {
        result.layers.push(simulate_layer(cfg, layer));
    }
    result
}

/// [`run`] against the build-once artifacts of a [`SharedEncodedNetwork`]:
/// every layer borrows its shared scheduler (and, when available, the
/// engine-independent traffic counters) instead of re-encoding and
/// re-scheduling per design point. Cycle-for-cycle identical to [`run`].
///
/// # Panics
///
/// Panics if `shared` was built for a different workload shape or does
/// not cover `cfg` (see [`SharedEncodedNetwork::scheduler`]).
pub fn run_shared(
    cfg: &PraConfig,
    workload: &NetworkWorkload,
    shared: &SharedEncodedNetwork,
) -> RunResult {
    run_shared_streaming(cfg, workload, shared, |_, _| {})
}

/// [`run_shared`] with a per-layer observer: `on_layer(idx, partial)`
/// fires the moment layer `idx` finishes simulating, with the run
/// result accumulated so far — the serving tier's v2 streaming hook
/// (each call becomes one `layer_result` wire frame). The observer
/// never changes the result: the returned [`RunResult`] is identical
/// to [`run_shared`]'s.
///
/// # Panics
///
/// Panics if `shared` was built for a different workload shape or does
/// not cover `cfg` (see [`SharedEncodedNetwork::scheduler`]).
pub fn run_shared_streaming(
    cfg: &PraConfig,
    workload: &NetworkWorkload,
    shared: &SharedEncodedNetwork,
    mut on_layer: impl FnMut(usize, &RunResult),
) -> RunResult {
    assert_eq!(cfg.repr, workload.repr, "configuration representation must match the workload");
    assert_eq!(
        shared.layer_count(),
        workload.layers.len(),
        "shared artifacts must cover every layer of the workload"
    );
    let mut result = RunResult::new(cfg.label());
    for (idx, layer) in workload.layers.iter().enumerate() {
        result.layers.push(simulate_layer_shared(
            cfg,
            layer.view(),
            shared.scheduler(idx, cfg),
            shared.traffic_for(idx, cfg),
        ));
        on_layer(idx, &result);
    }
    result
}

/// [`run_shared_streaming`] against a [`PipelinedBuild`] still in
/// flight: layer `idx` simulates as soon as the builder thread has
/// encoded it, so encoding of layer *n + 1* overlaps simulation of
/// layer *n* instead of the build-everything-then-simulate sequence.
/// Cycle-for-cycle identical to [`run_shared`] over the finished
/// build — only the schedule moves, never the arithmetic.
///
/// # Panics
///
/// Panics if the build does not cover `cfg` or the workload shape, or
/// if the builder thread died mid-build.
pub fn run_pipelined(
    cfg: &PraConfig,
    workload: &NetworkWorkload,
    build: &PipelinedBuild,
    mut on_layer: impl FnMut(usize, &RunResult),
) -> RunResult {
    assert_eq!(cfg.repr, workload.repr, "configuration representation must match the workload");
    assert_eq!(
        build.layer_count(),
        workload.layers.len(),
        "pipelined build must cover every layer of the workload"
    );
    let mut result = RunResult::new(cfg.label());
    for (idx, layer) in workload.layers.iter().enumerate() {
        let (sched, traffic) = build.artifacts(idx, cfg);
        result.layers.push(simulate_layer_shared(cfg, layer.view(), &sched, traffic.as_ref()));
        on_layer(idx, &result);
    }
    result
}

/// DaDianNao cycles for the same chip structure — a convenience re-export
/// used when computing speedups.
pub fn dadn_baseline(chip: &ChipConfig, workload: &NetworkWorkload) -> RunResult {
    pra_engines::dadn::run(chip, workload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pra_fixed::PrecisionWindow;
    use pra_tensor::{ConvLayerSpec, Tensor3};
    use pra_workloads::Representation;

    fn toy_layer(fill: impl FnMut(usize, usize, usize) -> u16) -> LayerWorkload {
        let spec = ConvLayerSpec::new("toy", (32, 8, 32), (3, 3), 64, 1, 1).unwrap();
        LayerWorkload {
            neurons: Tensor3::from_fn(spec.input, fill),
            spec,
            window: PrecisionWindow::with_width(9, 2),
            stripes_precision: 9,
        }
    }

    fn dadn_cycles(layer: &LayerWorkload) -> u64 {
        pra_engines::dadn::layer_cycles(&ChipConfig::dadn(), layer)
    }

    fn unpadded_layer(fill: impl FnMut(usize, usize, usize) -> u16) -> LayerWorkload {
        let spec = ConvLayerSpec::new("toy", (34, 10, 32), (3, 3), 64, 1, 0).unwrap();
        LayerWorkload {
            neurons: Tensor3::from_fn(spec.input, fill),
            spec,
            window: PrecisionWindow::with_width(9, 2),
            stripes_precision: 9,
        }
    }

    #[test]
    fn worst_case_matches_dadn() {
        // All bits set: every neuron has 16 oneffsets -> every brick step
        // takes 16 cycles, exactly DaDN's per-window rate (16 windows in
        // parallel). Unpadded layer: with padding PRA is *faster* than
        // DaDN even in the worst case, because all-padding brick steps
        // cost one cycle instead of sixteen.
        let layer = unpadded_layer(|_, _, _| u16::MAX);
        let cfg = PraConfig::single_stage(Representation::Fixed16).with_trim(false);
        let r = simulate_layer(&cfg, &layer);
        assert_eq!(r.cycles, dadn_cycles(&layer));
    }

    #[test]
    fn padding_makes_worst_case_strictly_faster_than_dadn() {
        let layer = toy_layer(|_, _, _| u16::MAX);
        let cfg = PraConfig::single_stage(Representation::Fixed16).with_trim(false);
        let r = simulate_layer(&cfg, &layer);
        assert!(r.cycles < dadn_cycles(&layer));
    }

    #[test]
    fn sparse_layers_run_much_faster() {
        let layer = toy_layer(|x, y, i| if (x + y + i) % 8 == 0 { 0b100 } else { 0 });
        let cfg = PraConfig::single_stage(Representation::Fixed16);
        let r = simulate_layer(&cfg, &layer);
        assert!(r.cycles * 8 < dadn_cycles(&layer), "cycles {}", r.cycles);
    }

    #[test]
    fn never_slower_than_dadn_on_aligned_layers() {
        let layer = toy_layer(|x, y, i| (x * 31 + y * 17 + i * 13) as u16);
        for l in 0..=4 {
            let cfg = PraConfig::two_stage(l, Representation::Fixed16).with_trim(false);
            let r = simulate_layer(&cfg, &layer);
            assert!(r.cycles <= dadn_cycles(&layer), "L={l}");
        }
    }

    #[test]
    fn larger_l_never_slower_at_layer_scale() {
        let layer = toy_layer(|x, y, i| ((x * 131 + y * 241 + i * 37) % 4093) as u16);
        let mut prev = u64::MAX;
        for l in 0..=4 {
            let cfg = PraConfig::two_stage(l, Representation::Fixed16);
            let c = simulate_layer(&cfg, &layer).cycles;
            assert!(c <= prev, "L={l}: {c} > {prev}");
            prev = c;
        }
    }

    #[test]
    fn column_sync_not_slower_than_pallet_sync() {
        let layer = toy_layer(|x, y, i| ((x * 7 + y * 3 + i) % 600) as u16);
        let pallet = simulate_layer(&PraConfig::two_stage(2, Representation::Fixed16), &layer);
        for ssrs in [1usize, 4, 16] {
            let col = simulate_layer(&PraConfig::per_column(ssrs, Representation::Fixed16), &layer);
            assert!(
                col.cycles
                    <= pallet.cycles
                        + layer.spec.brick_steps() as u64 * layer.spec.pallets() as u64,
                "{ssrs} SSRs: {} vs pallet {}",
                col.cycles,
                pallet.cycles
            );
        }
        let ideal = simulate_layer(
            &PraConfig {
                sync: SyncPolicy::PerColumnIdeal,
                ..PraConfig::two_stage(2, Representation::Fixed16)
            },
            &layer,
        );
        assert!(ideal.cycles <= pallet.cycles);
    }

    #[test]
    fn trimming_removes_suffix_work() {
        // Values with suffix noise below the window: trimming speeds up.
        let layer = toy_layer(|x, y, i| (0b1_0000 | ((x + y + i) % 4)) as u16);
        let on = simulate_layer(&PraConfig::two_stage(2, Representation::Fixed16), &layer);
        let off = simulate_layer(
            &PraConfig::two_stage(2, Representation::Fixed16).with_trim(false),
            &layer,
        );
        assert!(on.cycles < off.cycles);
    }

    #[test]
    fn terms_match_potential_model() {
        // The cycle simulator's effectual term count equals the ideal
        // potential study's PRA term count (same values, same trimming).
        let layer = toy_layer(|x, y, i| ((x * 5 + y * 11 + i * 3) % 300) as u16);
        let cfg = PraConfig::two_stage(2, Representation::Fixed16).with_trim(false);
        let r = simulate_layer(&cfg, &layer);
        let t = pra_engines::potential::layer_terms(&layer, Representation::Fixed16, 1);
        assert_eq!(r.counters.terms, t.pra);
    }

    #[test]
    fn sampled_fidelity_approximates_full() {
        let layer = toy_layer(|x, y, i| ((x * 97 + y * 53 + i * 29) % 511) as u16);
        let full = simulate_layer(&PraConfig::two_stage(2, Representation::Fixed16), &layer);
        let sampled = simulate_layer(
            &PraConfig::two_stage(2, Representation::Fixed16)
                .with_fidelity(Fidelity::Sampled { max_pallets: 4 }),
            &layer,
        );
        let ratio = sampled.cycles as f64 / full.cycles as f64;
        assert!((0.8..1.2).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn csd_encoding_not_slower_on_dense_values() {
        let layer = toy_layer(|_, _, _| 0b0111_1111_0000);
        let one = simulate_layer(&PraConfig::two_stage(2, Representation::Fixed16), &layer);
        let csd = simulate_layer(
            &PraConfig {
                encoding: Encoding::Csd,
                ..PraConfig::two_stage(2, Representation::Fixed16)
            },
            &layer,
        );
        assert!(csd.cycles <= one.cycles);
    }

    #[test]
    fn quant8_worst_case_is_8_cycles_per_step() {
        let spec = ConvLayerSpec::new("q", (34, 10, 32), (3, 3), 64, 1, 0).unwrap();
        let layer = LayerWorkload {
            neurons: Tensor3::from_fn(spec.input, |_, _, _| 0xFF),
            spec,
            window: PrecisionWindow::new(7, 0),
            stripes_precision: 8,
        };
        let cfg = PraConfig::two_stage(3, Representation::Quant8);
        let r = simulate_layer(&cfg, &layer);
        let dadn = dadn_cycles(&layer);
        // 8 oneffsets per neuron vs DaDN's 1 cycle/brick-step/window with
        // 16-way window parallelism -> exactly half of DaDN's 16.
        assert_eq!(r.cycles, dadn / 2);
    }

    #[test]
    #[should_panic(expected = "must match")]
    fn run_rejects_mismatched_representation() {
        let w = pra_workloads::NetworkWorkload::build_with_model(
            pra_workloads::Network::AlexNet,
            Representation::Quant8,
            pra_workloads::ActivationModel {
                zero_frac: 0.5,
                sigma: 0.2,
                suffix_density: 0.0,
                outlier_prob: 0.0,
                dense_prob: 0.0,
                heavy_share: 0.0,
            },
            1,
        );
        let cfg = PraConfig::two_stage(2, Representation::Fixed16);
        let _ = run(&cfg, &w);
    }
}
