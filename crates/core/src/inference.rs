//! Multi-layer functional inference through the Pragmatic datapath.
//!
//! Chains convolution, rectify/requantize and pooling operations the way
//! the chip executes a network (§IV-B: outputs go through the activation
//! function into NM and come back as the next layer's inputs, trimmed per
//! §V-F), producing both the numerical outputs — computed through the
//! oneffset datapath and therefore covered by the functional-equivalence
//! guarantee — and the per-convolution cycle results of the configured
//! design point.

use std::error::Error;
use std::fmt;

use pra_fixed::PrecisionWindow;
use pra_sim::LayerResult;
use pra_tensor::conv::relu_requantize;
use pra_tensor::pool::{avg_pool, max_pool};
use pra_tensor::{ConvLayerSpec, Tensor3};
use pra_workloads::LayerView;

use crate::config::PraConfig;
use crate::functional::compute_layer;

/// One operation of a network model.
#[derive(Debug, Clone)]
pub enum LayerOp {
    /// A convolutional layer executed on the accelerator.
    Conv {
        /// Layer geometry.
        spec: ConvLayerSpec,
        /// One synapse tensor per filter.
        synapses: Vec<Tensor3<i16>>,
        /// Precision window for §V-F trimming of the layer's *inputs*.
        window: PrecisionWindow,
        /// Arithmetic right shift applied when requantizing the raw sums
        /// back to 16-bit neurons (the activation path's scaling).
        requant_shift: u32,
    },
    /// Max pooling on the activation path.
    MaxPool {
        /// Window size.
        k: usize,
        /// Stride.
        stride: usize,
    },
    /// Average pooling on the activation path.
    AvgPool {
        /// Window size.
        k: usize,
        /// Stride.
        stride: usize,
    },
}

/// A network: an ordered list of operations.
#[derive(Debug, Clone, Default)]
pub struct NetworkModel {
    ops: Vec<LayerOp>,
}

impl NetworkModel {
    /// Creates an empty model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a convolution.
    pub fn conv(
        &mut self,
        spec: ConvLayerSpec,
        synapses: Vec<Tensor3<i16>>,
        window: PrecisionWindow,
        requant_shift: u32,
    ) -> &mut Self {
        self.ops.push(LayerOp::Conv { spec, synapses, window, requant_shift });
        self
    }

    /// Appends a max-pool.
    pub fn max_pool(&mut self, k: usize, stride: usize) -> &mut Self {
        self.ops.push(LayerOp::MaxPool { k, stride });
        self
    }

    /// Appends an average-pool.
    pub fn avg_pool(&mut self, k: usize, stride: usize) -> &mut Self {
        self.ops.push(LayerOp::AvgPool { k, stride });
        self
    }

    /// The operations in execution order.
    pub fn ops(&self) -> &[LayerOp] {
        &self.ops
    }

    /// Runs the model on `input`: every convolution is computed through
    /// the Pragmatic datapath *and* cycle-simulated under `cfg`.
    ///
    /// # Errors
    ///
    /// Returns [`InferenceError`] when an operation's expected input shape
    /// does not match the tensor flowing into it.
    pub fn run(
        &self,
        cfg: &PraConfig,
        input: Tensor3<u16>,
    ) -> Result<InferenceOutcome, InferenceError> {
        let mut acts = input;
        let mut conv_results = Vec::new();
        for (idx, op) in self.ops.iter().enumerate() {
            match op {
                LayerOp::Conv { spec, synapses, window, requant_shift } => {
                    if acts.dim() != spec.input {
                        return Err(InferenceError::ShapeMismatch {
                            op: idx,
                            layer: spec.name().to_string(),
                            expected: format!("{:?}", spec.input),
                            got: format!("{:?}", acts.dim()),
                        });
                    }
                    // The cycle model sees the same trimmed stream the
                    // datapath consumes — borrowed, not cloned: the
                    // simulator only reads the activations.
                    let view = LayerView {
                        spec,
                        window: *window,
                        stripes_precision: window.width(),
                        neurons: &acts,
                    };
                    conv_results.push(crate::sim::simulate_layer_view(cfg, view));
                    let raw = compute_layer(cfg, spec, &acts, synapses, *window);
                    acts = relu_requantize(&raw, *requant_shift);
                }
                LayerOp::MaxPool { k, stride } => {
                    let d = acts.dim();
                    if *k > d.x || *k > d.y {
                        return Err(InferenceError::ShapeMismatch {
                            op: idx,
                            layer: "max_pool".into(),
                            expected: format!("window {k} <= {}x{}", d.x, d.y),
                            got: format!("{d:?}"),
                        });
                    }
                    acts = max_pool(&acts, *k, *stride);
                }
                LayerOp::AvgPool { k, stride } => {
                    let d = acts.dim();
                    if *k > d.x || *k > d.y {
                        return Err(InferenceError::ShapeMismatch {
                            op: idx,
                            layer: "avg_pool".into(),
                            expected: format!("window {k} <= {}x{}", d.x, d.y),
                            got: format!("{d:?}"),
                        });
                    }
                    acts = avg_pool(&acts, *k, *stride);
                }
            }
        }
        Ok(InferenceOutcome { output: acts, conv_results })
    }
}

/// Output of [`NetworkModel::run`].
#[derive(Debug, Clone)]
pub struct InferenceOutcome {
    /// The final activation tensor.
    pub output: Tensor3<u16>,
    /// Cycle-simulation results for each convolution, in order.
    pub conv_results: Vec<LayerResult>,
}

impl InferenceOutcome {
    /// Total accelerator cycles across the convolutions.
    pub fn total_cycles(&self) -> u64 {
        self.conv_results.iter().map(|r| r.cycles).sum()
    }
}

/// Error running a network model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InferenceError {
    /// An operation received a tensor of the wrong shape.
    ShapeMismatch {
        /// Index of the failing operation.
        op: usize,
        /// Name of the failing layer/op.
        layer: String,
        /// What the op expected.
        expected: String,
        /// What it received.
        got: String,
    },
}

impl fmt::Display for InferenceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InferenceError::ShapeMismatch { op, layer, expected, got } => {
                write!(f, "op {op} ({layer}): expected input {expected}, got {got}")
            }
        }
    }
}

impl Error for InferenceError {}

#[cfg(test)]
mod tests {
    use super::*;
    use pra_tensor::conv::convolve;
    use pra_workloads::generator::generate_synapses;
    use pra_workloads::Representation;

    fn toy_model() -> (NetworkModel, Tensor3<u16>) {
        let spec1 = ConvLayerSpec::new("c1", (12, 12, 8), (3, 3), 16, 1, 1).unwrap();
        let syn1 = generate_synapses(&spec1, 1);
        let spec2 = ConvLayerSpec::new("c2", (6, 6, 16), (3, 3), 8, 1, 1).unwrap();
        let syn2 = generate_synapses(&spec2, 2);
        let mut m = NetworkModel::new();
        m.conv(spec1.clone(), syn1, PrecisionWindow::full(), 6).max_pool(2, 2).conv(
            spec2,
            syn2,
            PrecisionWindow::full(),
            6,
        );
        let input = Tensor3::from_fn(spec1.input, |x, y, i| ((x * 7 + y * 5 + i * 3) % 200) as u16);
        (m, input)
    }

    fn cfg() -> PraConfig {
        PraConfig::two_stage(2, Representation::Fixed16).with_trim(false)
    }

    #[test]
    fn runs_and_produces_expected_shape() {
        let (m, input) = toy_model();
        let out = m.run(&cfg(), input).unwrap();
        assert_eq!(out.output.dim(), pra_tensor::Dim3::new(6, 6, 8));
        assert_eq!(out.conv_results.len(), 2);
        assert!(out.total_cycles() > 0);
    }

    #[test]
    fn first_conv_matches_reference() {
        let (m, input) = toy_model();
        let LayerOp::Conv { spec, synapses, .. } = &m.ops()[0] else {
            panic!("first op must be conv");
        };
        let reference = relu_requantize(&convolve(spec, &input, synapses), 6);
        let single = {
            let mut m1 = NetworkModel::new();
            m1.conv(spec.clone(), synapses.clone(), PrecisionWindow::full(), 6);
            m1.run(&cfg(), input).unwrap().output
        };
        assert_eq!(single, reference);
    }

    #[test]
    fn deterministic_across_runs() {
        let (m, input) = toy_model();
        let a = m.run(&cfg(), input.clone()).unwrap();
        let b = m.run(&cfg(), input).unwrap();
        assert_eq!(a.output, b.output);
        assert_eq!(a.total_cycles(), b.total_cycles());
    }

    #[test]
    fn shape_mismatch_reported() {
        let (m, _) = toy_model();
        let wrong = Tensor3::<u16>::zeros((5, 5, 8));
        let err = m.run(&cfg(), wrong).unwrap_err();
        let InferenceError::ShapeMismatch { op, .. } = err;
        assert_eq!(op, 0);
    }

    #[test]
    fn pool_mismatch_reported() {
        let mut m = NetworkModel::new();
        m.max_pool(9, 2);
        let err = m.run(&cfg(), Tensor3::<u16>::zeros((4, 4, 2))).unwrap_err();
        assert!(err.to_string().contains("max_pool"));
    }

    #[test]
    fn trimming_changes_output_but_not_shape() {
        let (m, input) = toy_model();
        // Narrow window: trimming zeroes low bits of the inputs.
        let mut trimmed_model = NetworkModel::new();
        for op in m.ops() {
            if let LayerOp::Conv { spec, synapses, requant_shift, .. } = op {
                trimmed_model.conv(
                    spec.clone(),
                    synapses.clone(),
                    PrecisionWindow::new(9, 3),
                    *requant_shift,
                );
            } else if let LayerOp::MaxPool { k, stride } = op {
                trimmed_model.max_pool(*k, *stride);
            }
        }
        let cfg_trim = PraConfig::two_stage(2, Representation::Fixed16); // trim on
        let full = m.run(&cfg_trim, input.clone()).unwrap();
        let trimmed = trimmed_model.run(&cfg_trim, input).unwrap();
        assert_eq!(full.output.dim(), trimmed.output.dim());
        assert_ne!(full.output, trimmed.output);
        assert!(trimmed.total_cycles() <= full.total_cycles());
    }
}
