//! Build-once simulation artifacts shared across design points.
//!
//! A sweep job evaluates one workload under several [`PraConfig`]s, and
//! most of what `simulate_layer` builds per run does not depend on the
//! whole design point:
//!
//! * the encoded mask buffer ([`EncodedLayer`]) depends only on the
//!   layer's neurons, its precision window and the [`EncodingKey`]
//!   (trim + encoding) — identical for every evaluated PRA variant;
//! * the brick-schedule memo ([`LayerScheduler`]) depends only on the
//!   masks and the [`SchedulerConfig`] — synchronization policy, chip
//!   structure and fidelity never reach it, so e.g. `PRA-2b` and
//!   `PRA-2b-1R` share one fully-memoized scheduler;
//! * the NM/SB traffic counters are identical across *all* engines by
//!   the paper's scheduling convention (§VI-A, [`shared_traffic`]) as
//!   long as chip, NM layout and representation agree.
//!
//! [`SharedEncodedNetwork`] materializes each distinct artifact exactly
//! once per layer and hands out shared handles;
//! [`crate::sim::run_shared`] consumes them in place of the per-run
//! construction. Results are cycle-for-cycle identical to the unshared
//! path — pinned by the equivalence grid in `tests/memo_sim.rs`.

use std::sync::Arc;

use pra_engines::shared_traffic;
use pra_sim::{AccessCounters, ChipConfig, Dispatcher, NeuronMemory, NmLayout};
use pra_workloads::{LayerView, NetworkWorkload, Representation};
use rayon::prelude::*;

use crate::column::SchedulerConfig;
use crate::config::{EncodingKey, PraConfig};
use crate::schedule::{EncodedLayer, LayerScheduler};

/// One layer's shared artifacts: every distinct `(EncodingKey,
/// SchedulerConfig)` pair the configuration set needs, each holding an
/// [`Arc`] onto its (possibly further shared) mask buffer.
struct SharedLayer {
    schedulers: Vec<(EncodingKey, SchedulerConfig, Arc<LayerScheduler>)>,
}

/// Per-layer NM/SB traffic plus the chip view it was counted under —
/// counters are only handed out to consumers that match the view, so a
/// chip/layout/representation ablation can never silently borrow
/// mismatched numbers.
struct TrafficTable {
    chip: ChipConfig,
    nm_layout: NmLayout,
    repr: Representation,
    per_layer: Vec<AccessCounters>,
}

/// Encode-once, schedule-once artifacts for one workload under a set of
/// design points (see the module docs).
pub struct SharedEncodedNetwork {
    layers: Vec<SharedLayer>,
    /// Shared traffic, present when every built config agrees on chip,
    /// NM layout and representation (`None` otherwise — consumers then
    /// fall back to computing their own).
    traffic: Option<TrafficTable>,
}

impl SharedEncodedNetwork {
    /// Builds the shared artifacts for `layers` under `configs`,
    /// fanning the per-layer encoding work out on the rayon pool.
    ///
    /// # Panics
    ///
    /// Panics if `configs` is empty.
    pub fn build(configs: &[PraConfig], layers: &[LayerView<'_>]) -> Self {
        assert!(!configs.is_empty(), "SharedEncodedNetwork needs at least one configuration");
        // Distinct artifacts, preserving first-appearance order.
        let mut wanted: Vec<(EncodingKey, SchedulerConfig)> = Vec::new();
        for cfg in configs {
            let pair = (cfg.encoding_key(), cfg.scheduler());
            if !wanted.contains(&pair) {
                wanted.push(pair);
            }
        }
        let lead = configs[0];
        let share_traffic = configs
            .iter()
            .all(|c| c.chip == lead.chip && c.nm_layout == lead.nm_layout && c.repr == lead.repr);

        let views: Vec<&LayerView<'_>> = layers.iter().collect();
        let built: Vec<(SharedLayer, AccessCounters)> = views
            .into_par_iter()
            .map(|view| {
                let mut encodings: Vec<(EncodingKey, Arc<EncodedLayer>)> = Vec::new();
                let mut schedulers = Vec::with_capacity(wanted.len());
                for &(key, sched_cfg) in &wanted {
                    let encoded = match encodings.iter().find(|(k, _)| *k == key) {
                        Some((_, e)) => Arc::clone(e),
                        None => {
                            let e =
                                Arc::new(EncodedLayer::with_key(key, view.window, view.neurons));
                            encodings.push((key, Arc::clone(&e)));
                            e
                        }
                    };
                    schedulers.push((
                        key,
                        sched_cfg,
                        Arc::new(LayerScheduler::with_encoded(encoded, sched_cfg)),
                    ));
                }
                let traffic = if share_traffic {
                    let nm = NeuronMemory::new(
                        lead.nm_layout,
                        lead.chip.nm_row_neurons(lead.repr.bits()),
                    );
                    shared_traffic(&lead.chip, view.spec, &Dispatcher::new(nm))
                } else {
                    AccessCounters::new()
                };
                (SharedLayer { schedulers }, traffic)
            })
            .collect();

        let mut layers_out = Vec::with_capacity(built.len());
        let mut traffic_out = Vec::with_capacity(built.len());
        for (layer, traffic) in built {
            layers_out.push(layer);
            traffic_out.push(traffic);
        }
        let traffic = share_traffic.then_some(TrafficTable {
            chip: lead.chip,
            nm_layout: lead.nm_layout,
            repr: lead.repr,
            per_layer: traffic_out,
        });
        Self { layers: layers_out, traffic }
    }

    /// [`SharedEncodedNetwork::build`] over a workload's layers.
    pub fn from_workload(configs: &[PraConfig], workload: &NetworkWorkload) -> Self {
        let views: Vec<LayerView<'_>> = workload.layers.iter().map(|l| l.view()).collect();
        Self::build(configs, &views)
    }

    /// Number of layers the artifacts were built for.
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// The shared scheduler for `layer` under `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if the network was not built for a configuration with
    /// `cfg`'s encoding key and scheduler parameters — sharing silently
    /// mismatched artifacts would corrupt results.
    pub fn scheduler(&self, layer: usize, cfg: &PraConfig) -> &Arc<LayerScheduler> {
        let (key, sched_cfg) = (cfg.encoding_key(), cfg.scheduler());
        self.layers[layer]
            .schedulers
            .iter()
            .find(|(k, s, _)| *k == key && *s == sched_cfg)
            .map(|(_, _, sched)| sched)
            .unwrap_or_else(|| {
                panic!("SharedEncodedNetwork was not built for {} (layer {layer})", cfg.label())
            })
    }

    /// The shared NM/SB traffic counters for `layer` under `cfg`, or
    /// `None` when `cfg`'s chip, NM layout or representation differs
    /// from the view the counters were counted under (the caller then
    /// computes its own) — unlike schedules, traffic is *not* keyed by
    /// the scheduler parameters, so the match is checked here instead.
    pub fn traffic_for(&self, layer: usize, cfg: &PraConfig) -> Option<&AccessCounters> {
        self.traffic
            .as_ref()
            .filter(|t| t.chip == cfg.chip && t.nm_layout == cfg.nm_layout && t.repr == cfg.repr)
            .map(|t| &t.per_layer[layer])
    }

    /// All per-layer traffic counters — the slice other engines'
    /// `run_views` entry points accept — provided the caller's chip
    /// view matches the one the counters were counted under. `layout`
    /// is the NM layout the caller's dispatcher would use
    /// (`NmLayout::default()` for the baseline engines).
    pub fn traffic_view(
        &self,
        chip: &ChipConfig,
        layout: NmLayout,
        repr: Representation,
    ) -> Option<&[AccessCounters]> {
        self.traffic
            .as_ref()
            .filter(|t| t.chip == *chip && t.nm_layout == layout && t.repr == repr)
            .map(|t| t.per_layer.as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Encoding;
    use pra_fixed::PrecisionWindow;
    use pra_tensor::{ConvLayerSpec, Tensor3};
    use pra_workloads::{LayerWorkload, Representation};

    fn toy_layer() -> LayerWorkload {
        let spec = ConvLayerSpec::new("toy", (12, 6, 32), (3, 3), 32, 1, 1).unwrap();
        LayerWorkload {
            neurons: Tensor3::from_fn(spec.input, |x, y, i| ((x * 31 + y * 7 + i) % 777) as u16),
            spec,
            window: PrecisionWindow::with_width(9, 2),
            stripes_precision: 9,
        }
    }

    #[test]
    fn equal_scheduler_configs_share_one_scheduler() {
        let layer = toy_layer();
        let configs = [
            PraConfig::two_stage(2, Representation::Fixed16),
            PraConfig::per_column(1, Representation::Fixed16),
            PraConfig::single_stage(Representation::Fixed16),
        ];
        let shared = SharedEncodedNetwork::build(&configs, &[layer.view()]);
        // PRA-2b and PRA-2b-1R agree on (key, scheduler): same Arc.
        let a = shared.scheduler(0, &configs[0]);
        let b = shared.scheduler(0, &configs[1]);
        assert!(Arc::ptr_eq(a, b), "equal scheduler configs must share the memo");
        // PRA-4b differs in L but shares the mask buffer.
        let c = shared.scheduler(0, &configs[2]);
        assert!(!Arc::ptr_eq(a, c));
        assert!(Arc::ptr_eq(a.encoded_arc(), c.encoded_arc()), "same key must share masks");
    }

    #[test]
    fn distinct_encodings_get_distinct_masks() {
        let layer = toy_layer();
        let csd = PraConfig {
            encoding: Encoding::Csd,
            ..PraConfig::two_stage(2, Representation::Fixed16)
        };
        let one = PraConfig::two_stage(2, Representation::Fixed16);
        let shared = SharedEncodedNetwork::build(&[one, csd], &[layer.view()]);
        let a = shared.scheduler(0, &one);
        let b = shared.scheduler(0, &csd);
        assert!(!Arc::ptr_eq(a.encoded_arc(), b.encoded_arc()));
    }

    #[test]
    fn traffic_shared_only_under_matching_chip_view() {
        let layer = toy_layer();
        let one = PraConfig::two_stage(2, Representation::Fixed16);
        let shared = SharedEncodedNetwork::build(&[one], &[layer.view()]);
        assert!(shared.traffic_for(0, &one).is_some());
        assert!(shared.traffic_view(&one.chip, one.nm_layout, one.repr).is_some());
        // A consumer whose chip view differs gets nothing — even though
        // its scheduler parameters match, it must count its own traffic.
        let row_major = PraConfig { nm_layout: NmLayout::RowMajor, ..one };
        let _ = shared.scheduler(0, &row_major); // schedules DO match
        assert!(shared.traffic_for(0, &row_major).is_none(), "layout ablation must not reuse");
        assert!(shared.traffic_view(&one.chip, NmLayout::RowMajor, one.repr).is_none());
        let quant = PraConfig::two_stage(2, Representation::Quant8);
        assert!(shared.traffic_for(0, &quant).is_none());
        let mixed = SharedEncodedNetwork::build(&[one, quant], &[layer.view()]);
        assert!(
            mixed.traffic_for(0, &one).is_none(),
            "mixed representations must not share traffic"
        );
    }

    #[test]
    #[should_panic(expected = "not built for")]
    fn missing_configuration_panics() {
        let layer = toy_layer();
        let one = PraConfig::two_stage(2, Representation::Fixed16);
        let shared = SharedEncodedNetwork::build(&[one], &[layer.view()]);
        let _ = shared.scheduler(0, &PraConfig::single_stage(Representation::Fixed16));
    }
}
