//! Build-once simulation artifacts shared across design points.
//!
//! A sweep job evaluates one workload under several [`PraConfig`]s, and
//! most of what `simulate_layer` builds per run does not depend on the
//! whole design point:
//!
//! * the encoded mask buffer ([`EncodedLayer`]) depends only on the
//!   layer's neurons, its precision window and the [`EncodingKey`]
//!   (trim + encoding) — identical for every evaluated PRA variant;
//! * the brick-schedule memo ([`LayerScheduler`]) depends only on the
//!   masks and the [`SchedulerConfig`] — synchronization policy, chip
//!   structure and fidelity never reach it, so e.g. `PRA-2b` and
//!   `PRA-2b-1R` share one fully-memoized scheduler;
//! * the NM/SB traffic counters are identical across *all* engines by
//!   the paper's scheduling convention (§VI-A, [`shared_traffic`]) as
//!   long as chip, NM layout and representation agree.
//!
//! [`SharedEncodedNetwork`] materializes each distinct artifact exactly
//! once per layer and hands out shared handles;
//! [`crate::sim::run_shared`] consumes them in place of the per-run
//! construction. Results are cycle-for-cycle identical to the unshared
//! path — pinned by the equivalence grid in `tests/memo_sim.rs`.
//!
//! Two artifact kinds additionally persist across *processes* through
//! the tiered [`ArtifactStore`] (DESIGN.md §9, §15):
//!
//! * the NM/SB traffic table (`"tr"` entries) — geometry + chip view
//!   only, never neuron values, so one entry serves every seed;
//! * the encoded masks and schedule memos (`"en"` entries,
//!   `crate::artifact`) — neuron-value dependent, keyed over the
//!   workload's content address, shared across fidelities.
//!
//! [`SharedEncodedNetwork::from_workload_stored`] resolves both tiers
//! (pool → disk → generate is completed by [`ArtifactPool`] above it)
//! and [`SharedEncodedNetwork::publish_encoded`] writes the encoded
//! entry back once the simulation has warmed the memos.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

use pra_engines::shared_traffic;
use pra_sim::{AccessCounters, ChipConfig, Dispatcher, NeuronMemory, NmLayout};
use pra_workloads::cache::{ArtifactKind, ArtifactStore, CacheKey, CacheOutcome, KeyHasher};
use pra_workloads::{LayerView, NetworkWorkload, Representation};
use rayon::prelude::*;

use crate::artifact::{ENCODED_KIND, ENCODER_VERSION};
use crate::column::SchedulerConfig;
use crate::config::{EncodingKey, PraConfig};
use crate::schedule::{EncodedLayer, LayerScheduler};

/// Version of the persisted traffic-table artifact. Bump whenever the
/// traffic-counting convention changes (`shared_traffic`, the
/// dispatcher's fetch model, [`AccessCounters`] fields or their
/// serialization order): the version is hashed into the cache key, so
/// old entries become unreachable instead of serving stale counts.
pub const TRAFFIC_VERSION: u32 = 1;

/// Cache entry kind for persisted per-layer traffic tables.
pub const TRAFFIC_KIND: &str = "tr";

/// One layer's shared artifacts: every distinct `(EncodingKey,
/// SchedulerConfig)` pair the configuration set needs, each holding an
/// [`Arc`] onto its (possibly further shared) mask buffer.
#[derive(Clone)]
pub(crate) struct SharedLayer {
    pub(crate) schedulers: Vec<(EncodingKey, SchedulerConfig, Arc<LayerScheduler>)>,
}

/// Per-layer NM/SB traffic plus the chip view it was counted under —
/// counters are only handed out to consumers that match the view, so a
/// chip/layout/representation ablation can never silently borrow
/// mismatched numbers.
struct TrafficTable {
    chip: ChipConfig,
    nm_layout: NmLayout,
    repr: Representation,
    per_layer: Vec<AccessCounters>,
}

/// A pending encoded-artifact publication: the key a tier-enabled
/// build missed under, carried until [`SharedEncodedNetwork::
/// publish_encoded`] writes the (by then memo-warm) entry. The flag
/// makes publication once-only however many batches reuse the network.
struct EncodedPending {
    key: CacheKey,
    wanted: Vec<(EncodingKey, SchedulerConfig)>,
    published: AtomicBool,
}

/// Per-tier disk outcomes of one [`SharedEncodedNetwork::
/// from_workload_stored`] build, reported in bench.json and the serve
/// telemetry. `Disabled` covers both a disabled tier and (for traffic)
/// a configuration set that does not share one traffic view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreOutcomes {
    /// Encoded masks + schedule memos (`"en"`).
    pub encoded: CacheOutcome,
    /// NM/SB traffic table (`"tr"`).
    pub traffic: CacheOutcome,
}

/// The distinct `(EncodingKey, SchedulerConfig)` pairs of `configs`,
/// preserving first-appearance order — the single definition shared by
/// every build path and the encoded-artifact key/payload, so the
/// persisted pair set can never diverge from what a build constructs.
pub(crate) fn wanted_pairs(configs: &[PraConfig]) -> Vec<(EncodingKey, SchedulerConfig)> {
    let mut wanted: Vec<(EncodingKey, SchedulerConfig)> = Vec::new();
    for cfg in configs {
        let pair = (cfg.encoding_key(), cfg.scheduler());
        if !wanted.contains(&pair) {
            wanted.push(pair);
        }
    }
    wanted
}

/// Encode-once, schedule-once artifacts for one workload under a set of
/// design points (see the module docs).
pub struct SharedEncodedNetwork {
    layers: Vec<SharedLayer>,
    /// Shared traffic, present when every built config agrees on chip,
    /// NM layout and representation (`None` otherwise — consumers then
    /// fall back to computing their own).
    traffic: Option<TrafficTable>,
    /// Set when a tier-enabled build missed the encoded entry; see
    /// [`SharedEncodedNetwork::publish_encoded`].
    encoded_pending: Option<EncodedPending>,
}

impl SharedEncodedNetwork {
    /// Builds the shared artifacts for `layers` under `configs`,
    /// fanning the per-layer encoding work out on the rayon pool.
    ///
    /// # Panics
    ///
    /// Panics if `configs` is empty.
    pub fn build(configs: &[PraConfig], layers: &[LayerView<'_>]) -> Self {
        Self::build_inner(configs, layers, None)
    }

    /// [`SharedEncodedNetwork::build`] with an optional preloaded
    /// per-layer traffic table (one entry per layer, in layer order) —
    /// the warm-cache path skips the dispatch recount entirely.
    fn build_inner(
        configs: &[PraConfig],
        layers: &[LayerView<'_>],
        preloaded_traffic: Option<Vec<AccessCounters>>,
    ) -> Self {
        assert!(!configs.is_empty(), "SharedEncodedNetwork needs at least one configuration");
        let wanted = wanted_pairs(configs);
        let lead = configs[0];
        let share_traffic = agree_on_traffic_view(configs);
        let preloaded = preloaded_traffic.filter(|t| share_traffic && t.len() == layers.len());

        let views: Vec<(usize, &LayerView<'_>)> = layers.iter().enumerate().collect();
        let built: Vec<(SharedLayer, AccessCounters)> = views
            .into_par_iter()
            .map(|(idx, view)| {
                build_layer(
                    &wanted,
                    &lead,
                    share_traffic,
                    preloaded.as_ref().map(|t| &t[idx]),
                    view,
                )
            })
            .collect();

        let mut layers_out = Vec::with_capacity(built.len());
        let mut traffic_out = Vec::with_capacity(built.len());
        for (layer, traffic) in built {
            layers_out.push(layer);
            traffic_out.push(traffic);
        }
        let traffic = share_traffic.then_some(TrafficTable {
            chip: lead.chip,
            nm_layout: lead.nm_layout,
            repr: lead.repr,
            per_layer: traffic_out,
        });
        Self { layers: layers_out, traffic, encoded_pending: None }
    }

    /// [`SharedEncodedNetwork::build`] over a workload's layers.
    pub fn from_workload(configs: &[PraConfig], workload: &NetworkWorkload) -> Self {
        let views: Vec<LayerView<'_>> = workload.layers.iter().map(|l| l.view()).collect();
        Self::build(configs, &views)
    }

    /// [`SharedEncodedNetwork::from_workload`] resolved through the
    /// tiered artifact store: the encoded tier (`"en"`) replaces the
    /// whole mask-encode with a deserialize on a warm run and arms a
    /// deferred publication on a miss
    /// ([`SharedEncodedNetwork::publish_encoded`]); the traffic tier
    /// (`"tr"`) replaces the dispatch recount and publishes a cold
    /// count immediately (counters are complete at build time, unlike
    /// the memos). `seed` is the workload's generator seed — it reaches
    /// the encoded key through the workload's content address, since
    /// masks (unlike traffic) depend on neuron values.
    ///
    /// Either tier falls back bit-identically to a fresh build when
    /// disabled, missing, corrupt, truncated or version-drifted.
    ///
    /// # Panics
    ///
    /// Panics if `configs` is empty.
    pub fn from_workload_stored(
        configs: &[PraConfig],
        workload: &NetworkWorkload,
        seed: u64,
        store: &ArtifactStore,
    ) -> (Self, StoreOutcomes) {
        assert!(!configs.is_empty(), "SharedEncodedNetwork needs at least one configuration");
        let views: Vec<LayerView<'_>> = workload.layers.iter().map(|l| l.view()).collect();
        let wanted = wanted_pairs(configs);
        let lead = configs[0];
        let share_traffic = agree_on_traffic_view(configs);

        // Encoded tier: probe before paying for the encode.
        let mut encoded_outcome = CacheOutcome::Disabled;
        let mut decoded: Option<Vec<SharedLayer>> = None;
        let mut pending: Option<EncodedPending> = None;
        if let Some(cache) = store.cache_for(ArtifactKind::Encoded) {
            let key = crate::artifact::encoded_key(workload, seed, &wanted);
            let dims: Vec<_> = views.iter().map(|v| v.neurons.dim()).collect();
            decoded = cache
                .load(ENCODED_KIND, ENCODER_VERSION, &key)
                .and_then(|payload| crate::artifact::decode_layers(payload, &wanted, &dims));
            if decoded.is_some() {
                encoded_outcome = CacheOutcome::Hit;
            } else {
                encoded_outcome = CacheOutcome::Miss;
                pending = Some(EncodedPending {
                    key,
                    wanted: wanted.clone(),
                    published: AtomicBool::new(false),
                });
            }
        }

        // Traffic tier.
        let mut traffic_outcome = CacheOutcome::Disabled;
        let mut traffic_store_key: Option<CacheKey> = None;
        let mut preloaded: Option<Vec<AccessCounters>> = None;
        if share_traffic {
            if let Some(cache) = store.cache_for(ArtifactKind::Traffic) {
                let key = traffic_key(
                    workload.network.name(),
                    &views,
                    &lead.chip,
                    lead.nm_layout,
                    lead.repr,
                );
                preloaded = cache
                    .load(TRAFFIC_KIND, TRAFFIC_VERSION, &key)
                    .and_then(|payload| decode_traffic(&payload, views.len()));
                if preloaded.is_some() {
                    traffic_outcome = CacheOutcome::Hit;
                } else {
                    traffic_outcome = CacheOutcome::Miss;
                    traffic_store_key = Some(key);
                }
            }
        }

        let built = match decoded {
            Some(layers) => {
                // Masks and memos came off disk; only traffic remains.
                let traffic = share_traffic.then(|| {
                    let per_layer = preloaded.unwrap_or_else(|| {
                        views.par_iter().map(|view| count_traffic(&lead, view)).collect()
                    });
                    TrafficTable {
                        chip: lead.chip,
                        nm_layout: lead.nm_layout,
                        repr: lead.repr,
                        per_layer,
                    }
                });
                Self { layers, traffic, encoded_pending: None }
            }
            None => {
                let mut built = Self::build_inner(configs, &views, preloaded);
                built.encoded_pending = pending;
                built
            }
        };
        if let (Some(key), Some(cache), Some(table)) = (
            traffic_store_key.as_ref(),
            store.cache_for(ArtifactKind::Traffic),
            built.traffic.as_ref(),
        ) {
            // Best-effort, like every cache store.
            let _ =
                cache.store(TRAFFIC_KIND, TRAFFIC_VERSION, key, &encode_traffic(&table.per_layer));
        }
        (built, StoreOutcomes { encoded: encoded_outcome, traffic: traffic_outcome })
    }

    /// Publishes the encoded-artifact entry this build missed under, if
    /// any — called *after* simulation so the persisted memos carry the
    /// brick schedules the run actually computed (publishing earlier
    /// would be correct but cold: memo slots serialize as the lazy
    /// sentinel and refill on load). No-op unless the build armed a
    /// pending key, the store's encoded tier is enabled, and nothing
    /// published this network before; returns `true` exactly when an
    /// entry was written.
    pub fn publish_encoded(&self, store: &ArtifactStore) -> bool {
        let Some(pending) = self.encoded_pending.as_ref() else {
            return false;
        };
        let Some(cache) = store.cache_for(ArtifactKind::Encoded) else {
            return false;
        };
        // relaxed-ok: the flag only dedups publications; the entry
        // content is independent of ordering, and a double publish
        // would merely rewrite identical bytes.
        if pending.published.swap(true, Ordering::Relaxed) {
            return false;
        }
        let payload = crate::artifact::encode_layers(&self.layers, &pending.wanted);
        cache.store(ENCODED_KIND, ENCODER_VERSION, &pending.key, &payload).is_ok()
    }

    /// Number of layers the artifacts were built for.
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// The shared scheduler for `layer` under `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if the network was not built for a configuration with
    /// `cfg`'s encoding key and scheduler parameters — sharing silently
    /// mismatched artifacts would corrupt results.
    pub fn scheduler(&self, layer: usize, cfg: &PraConfig) -> &Arc<LayerScheduler> {
        let (key, sched_cfg) = (cfg.encoding_key(), cfg.scheduler());
        self.layers[layer]
            .schedulers
            .iter()
            .find(|(k, s, _)| *k == key && *s == sched_cfg)
            .map(|(_, _, sched)| sched)
            .unwrap_or_else(|| {
                panic!("SharedEncodedNetwork was not built for {} (layer {layer})", cfg.label())
            })
    }

    /// The shared NM/SB traffic counters for `layer` under `cfg`, or
    /// `None` when `cfg`'s chip, NM layout or representation differs
    /// from the view the counters were counted under (the caller then
    /// computes its own) — unlike schedules, traffic is *not* keyed by
    /// the scheduler parameters, so the match is checked here instead.
    pub fn traffic_for(&self, layer: usize, cfg: &PraConfig) -> Option<&AccessCounters> {
        self.traffic
            .as_ref()
            .filter(|t| t.chip == cfg.chip && t.nm_layout == cfg.nm_layout && t.repr == cfg.repr)
            .map(|t| &t.per_layer[layer])
    }

    /// All per-layer traffic counters — the slice other engines'
    /// `run_views` entry points accept — provided the caller's chip
    /// view matches the one the counters were counted under. `layout`
    /// is the NM layout the caller's dispatcher would use
    /// (`NmLayout::default()` for the baseline engines).
    pub fn traffic_view(
        &self,
        chip: &ChipConfig,
        layout: NmLayout,
        repr: Representation,
    ) -> Option<&[AccessCounters]> {
        self.traffic
            .as_ref()
            .filter(|t| t.chip == *chip && t.nm_layout == layout && t.repr == repr)
            .map(|t| t.per_layer.as_slice())
    }
}

/// Counts one layer's NM/SB traffic under the lead configuration's
/// chip view — the per-layer unit of the §VI-A shared-traffic
/// convention.
fn count_traffic(lead: &PraConfig, view: &LayerView<'_>) -> AccessCounters {
    let nm = NeuronMemory::new(lead.nm_layout, lead.chip.nm_row_neurons(lead.repr.bits()));
    shared_traffic(&lead.chip, view.spec, &Dispatcher::new(nm))
}

/// Builds one layer's mask buffers and schedulers: every distinct
/// `(EncodingKey, SchedulerConfig)` pair, with pairs that agree on the
/// key sharing one mask buffer `Arc` — the sharing invariant the
/// persisted encoded artifacts reconstruct on load.
fn build_layer_artifacts(
    wanted: &[(EncodingKey, SchedulerConfig)],
    view: &LayerView<'_>,
) -> SharedLayer {
    let mut encodings: Vec<(EncodingKey, Arc<EncodedLayer>)> = Vec::new();
    let mut schedulers = Vec::with_capacity(wanted.len());
    for &(key, sched_cfg) in wanted {
        let encoded = match encodings.iter().find(|(k, _)| *k == key) {
            Some((_, e)) => Arc::clone(e),
            None => {
                let e = Arc::new(EncodedLayer::with_key(key, view.window, view.neurons));
                encodings.push((key, Arc::clone(&e)));
                e
            }
        };
        schedulers.push((
            key,
            sched_cfg,
            Arc::new(LayerScheduler::with_encoded(encoded, sched_cfg)),
        ));
    }
    SharedLayer { schedulers }
}

/// Builds one layer's shared artifacts (the pure per-layer unit both
/// the rayon fan-out in [`SharedEncodedNetwork::build`] and the
/// sequential [`PipelinedBuild`] thread map over): every distinct
/// `(EncodingKey, SchedulerConfig)` pair, plus the layer's traffic
/// counters (preloaded, counted under the lead view, or zeroed when
/// the configuration set does not share one view).
fn build_layer(
    wanted: &[(EncodingKey, SchedulerConfig)],
    lead: &PraConfig,
    share_traffic: bool,
    preloaded: Option<&AccessCounters>,
    view: &LayerView<'_>,
) -> (SharedLayer, AccessCounters) {
    let traffic = match preloaded {
        Some(table) => *table,
        None if share_traffic => count_traffic(lead, view),
        None => AccessCounters::new(),
    };
    (build_layer_artifacts(wanted, view), traffic)
}

/// Layer slots the pipelined builder fills in index order.
struct PipeState {
    built: Vec<Option<(SharedLayer, AccessCounters)>>,
    /// Set (with a wakeup) when the builder stops, normally or not —
    /// waiters must never block on a slot that will never fill.
    finished: bool,
    /// What the encoded store tier contributed. The builder thread owns
    /// the probe (so a warm start blocks on nothing heavier than key
    /// derivation) and resolves this from its initial value — `Miss`
    /// for a tier-enabled start, `Disabled` otherwise — in the same
    /// critical section that publishes the final layer: any consumer
    /// that has seen every layer reads a settled value.
    encoded_outcome: CacheOutcome,
}

/// Wakes every [`PipelinedBuild`] waiter when the builder thread stops
/// for *any* reason — including an unwind mid-build. Without this, a
/// panicking builder would leave a simulation thread parked on the
/// condvar forever; with it, the waiter observes `finished` with an
/// unfilled slot and raises a diagnosable panic instead of hanging.
struct NotifyOnStop(Arc<(Mutex<PipeState>, Condvar)>);

impl Drop for NotifyOnStop {
    fn drop(&mut self) {
        let (state, cv) = &*self.0;
        let mut g = state.lock().unwrap_or_else(PoisonError::into_inner);
        g.finished = true;
        drop(g);
        cv.notify_all();
    }
}

/// A [`SharedEncodedNetwork`] build in flight: layers are built
/// *sequentially, in index order, on a background thread*, and each
/// layer's artifacts become consumable the moment they are ready — so a
/// simulation thread can run layer *n* while the builder encodes layer
/// *n + 1* (the serving tier's streaming overlap; DESIGN.md §14). The
/// finished artifacts are assembled into an ordinary
/// [`SharedEncodedNetwork`] by [`PipelinedBuild::finish`], and are
/// bit-identical to what [`SharedEncodedNetwork::from_workload`] builds
/// — per-layer artifact construction is pure, only its schedule moves.
pub struct PipelinedBuild {
    state: Arc<(Mutex<PipeState>, Condvar)>,
    /// The builder launches *lazily*, on the first consumer
    /// ([`PipelinedBuild::artifacts`] or [`PipelinedBuild::finish`]):
    /// spawning inside `start_pipelined` would make a runnable thread
    /// whose first act is heavy I/O (the encoded-entry load), and on a
    /// single core the wakeup can preempt the caller before the start
    /// call returns — charging overlapped background work to the
    /// caller's blocking-phase clock. Deferring the spawn keeps the
    /// start cost at key derivation, warm or cold.
    launch: Mutex<Launch>,
    lead: PraConfig,
    share_traffic: bool,
    layer_count: usize,
    /// The traffic-table cache key, kept so `finish` can publish a
    /// cold count (`None` when uncacheable or the load already hit).
    store_key: Option<CacheKey>,
    /// The encoded-artifact key a tier-enabled start armed, transferred
    /// to the assembled network by `finish` when the builder reported a
    /// miss (which also publishes: by then the sims that ran against
    /// the in-flight build have warmed the memos) and dropped when the
    /// entry streamed off disk.
    encoded_pending: Option<EncodedPending>,
    /// What the traffic tier contributed at start; see
    /// [`PipelinedBuild::traffic_outcome`].
    traffic_outcome: CacheOutcome,
}

/// Deferred builder launch state; see [`PipelinedBuild::launch`].
enum Launch {
    /// Not yet running: the whole-build closure, callable many times
    /// (all captures are read-only) but called at most once.
    Pending(Arc<dyn Fn() + Send + Sync>),
    /// Running or done; `None` once joined (or after an inline
    /// fallback run, which has no handle).
    Started(Option<std::thread::JoinHandle<()>>),
}

impl PipelinedBuild {
    /// Spawns the builder if no consumer has yet; on thread exhaustion
    /// every layer is built inline here instead (no overlap, same
    /// bytes) — racing consumers park on the launch lock until the
    /// layers exist.
    fn ensure_started(&self) {
        let mut g = self.launch.lock().unwrap_or_else(PoisonError::into_inner);
        let Launch::Pending(build_all) = &*g else {
            return;
        };
        let build_all = Arc::clone(build_all);
        let spawned = std::thread::Builder::new().name("pra-pipeline-build".to_string()).spawn({
            let build_all = Arc::clone(&build_all);
            move || build_all()
        });
        *g = Launch::Started(match spawned {
            Ok(handle) => Some(handle),
            Err(_) => {
                build_all();
                None
            }
        });
    }

    /// How many layers the build covers.
    pub fn layer_count(&self) -> usize {
        self.layer_count
    }

    /// What the encoded store tier contributed: `Hit` when every mask
    /// buffer and memo streamed off disk, `Miss` when a tier-enabled
    /// build (re)encoded and `finish` will publish, `Disabled` when the
    /// tier is off. The probe runs on the builder thread, so this
    /// settles with the final layer: read it after the build completes
    /// (all layers consumed, or [`PipelinedBuild::finish`] on the
    /// assembled network's behalf); earlier reads see the tier's
    /// configuration (`Disabled`/`Miss`), not the disk's answer.
    pub fn encoded_outcome(&self) -> CacheOutcome {
        self.lock().encoded_outcome
    }

    /// What the traffic store tier contributed at start (that probe is
    /// cheap — counters, not masks — and stays synchronous): `Hit` when
    /// the table loaded, `Miss` when `finish` will publish a cold
    /// count, `Disabled` when the tier is off or the configuration set
    /// does not share one traffic view.
    pub fn traffic_outcome(&self) -> CacheOutcome {
        self.traffic_outcome
    }

    fn lock(&self) -> MutexGuard<'_, PipeState> {
        self.state.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Blocks until `layer`'s artifacts are built, then returns the
    /// shared scheduler for `cfg` plus the layer's traffic counters
    /// (`None` exactly when [`SharedEncodedNetwork::traffic_for`]
    /// would answer `None`).
    ///
    /// # Panics
    ///
    /// Panics if the build does not cover `cfg` or `layer`, or if the
    /// builder thread died before producing the layer.
    pub fn artifacts(
        &self,
        layer: usize,
        cfg: &PraConfig,
    ) -> (Arc<LayerScheduler>, Option<AccessCounters>) {
        assert!(layer < self.layer_count, "pipelined build has no layer {layer}");
        self.ensure_started();
        let mut g = self.lock();
        let (layer_arts, traffic) = loop {
            if let Some((arts, traffic)) = g.built.get(layer).and_then(|slot| slot.as_ref()) {
                break (arts, *traffic);
            }
            assert!(
                !g.finished,
                "pipelined build stopped before producing layer {layer} (builder panicked?)"
            );
            g = self.state.1.wait(g).unwrap_or_else(PoisonError::into_inner);
        };
        let (key, sched_cfg) = (cfg.encoding_key(), cfg.scheduler());
        let sched = layer_arts
            .schedulers
            .iter()
            .find(|(k, s, _)| *k == key && *s == sched_cfg)
            .map(|(_, _, sched)| Arc::clone(sched))
            .unwrap_or_else(|| {
                panic!("PipelinedBuild was not started for {} (layer {layer})", cfg.label())
            });
        let traffic = (self.share_traffic
            && cfg.chip == self.lead.chip
            && cfg.nm_layout == self.lead.nm_layout
            && cfg.repr == self.lead.repr)
            .then_some(traffic);
        (sched, traffic)
    }

    /// Joins the builder and assembles the completed layers into an
    /// ordinary [`SharedEncodedNetwork`], publishing through `store`
    /// whatever the start missed: a cold traffic count when one was
    /// keyed, and the encoded artifacts (memo-warm — the sims that ran
    /// against the in-flight build filled them in place).
    ///
    /// # Panics
    ///
    /// Panics if the builder thread panicked (the artifacts would be
    /// incomplete; callers treat it like any worker panic).
    pub fn finish(mut self, store: &ArtifactStore) -> SharedEncodedNetwork {
        self.ensure_started();
        let handle = match &mut *self.launch.lock().unwrap_or_else(PoisonError::into_inner) {
            Launch::Started(handle) => handle.take(),
            Launch::Pending(_) => unreachable!("ensure_started leaves no Pending launch"),
        };
        if let Some(handle) = handle {
            assert!(handle.join().is_ok(), "pipelined artifact build panicked");
        }
        let mut g = self.lock();
        assert!(
            g.built.iter().all(Option::is_some),
            "pipelined build finished with missing layers"
        );
        let built: Vec<(SharedLayer, AccessCounters)> = g
            .built
            .drain(..)
            .map(|slot| slot.unwrap_or_else(|| unreachable!("checked above")))
            .collect();
        let encoded_outcome = g.encoded_outcome;
        drop(g);
        let mut layers_out = Vec::with_capacity(built.len());
        let mut traffic_out = Vec::with_capacity(built.len());
        for (layer, traffic) in built {
            layers_out.push(layer);
            traffic_out.push(traffic);
        }
        if let (Some(key), Some(cache)) =
            (self.store_key.as_ref(), store.cache_for(ArtifactKind::Traffic))
        {
            // Best-effort, like every cache store.
            let _ = cache.store(TRAFFIC_KIND, TRAFFIC_VERSION, key, &encode_traffic(&traffic_out));
        }
        let traffic = self.share_traffic.then_some(TrafficTable {
            chip: self.lead.chip,
            nm_layout: self.lead.nm_layout,
            repr: self.lead.repr,
            per_layer: traffic_out,
        });
        let network = SharedEncodedNetwork {
            layers: layers_out,
            traffic,
            // The entry streamed off disk intact: nothing to publish.
            // Anything less (miss, corrupt, partial) keeps the armed
            // key so the publish below repairs or creates the entry.
            encoded_pending: (encoded_outcome != CacheOutcome::Hit)
                .then(|| self.encoded_pending.take())
                .flatten(),
        };
        network.publish_encoded(store);
        network
    }
}

impl SharedEncodedNetwork {
    /// Starts a pipelined (layer-at-a-time, background-thread) build of
    /// the shared artifacts for `workload` under `configs` — the
    /// streaming-overlap counterpart of
    /// [`SharedEncodedNetwork::from_workload_stored`]. The traffic tier
    /// is probed synchronously like the batch build (counters are
    /// small); the *encoded* tier's probe — the entry load and its
    /// streamed decode — rides the builder thread, so this call blocks
    /// on nothing heavier than key derivation and a warm start's layers
    /// become consumable one by one, exactly as a cold encode streams
    /// them: warm or cold, the caller's foreground cost is simulation
    /// only. If the build thread cannot be spawned, every layer is
    /// built inline before this returns (slower, never wrong).
    ///
    /// # Panics
    ///
    /// Panics if `configs` is empty.
    pub fn start_pipelined(
        configs: &[PraConfig],
        workload: &Arc<NetworkWorkload>,
        seed: u64,
        store: &ArtifactStore,
    ) -> PipelinedBuild {
        assert!(!configs.is_empty(), "SharedEncodedNetwork needs at least one configuration");
        let wanted = wanted_pairs(configs);
        let lead = configs[0];
        let share_traffic = agree_on_traffic_view(configs);
        let layer_count = workload.layers.len();

        // Encoded tier: derive the key now (cheap — it hashes
        // generation inputs, not tensors), hand the cache handle to the
        // builder, and arm the publish unconditionally; `finish` drops
        // it when the builder reports the entry streamed intact.
        let encoded_probe = store
            .cache_for(ArtifactKind::Encoded)
            .map(|cache| (cache.clone(), crate::artifact::encoded_key(workload, seed, &wanted)));
        let encoded_pending = encoded_probe.as_ref().map(|(_, key)| EncodedPending {
            key: key.clone(),
            wanted: wanted.clone(),
            published: AtomicBool::new(false),
        });

        let (key, preloaded) = if share_traffic {
            let views: Vec<LayerView<'_>> = workload.layers.iter().map(|l| l.view()).collect();
            let key =
                traffic_key(workload.network.name(), &views, &lead.chip, lead.nm_layout, lead.repr);
            let preloaded = store
                .cache_for(ArtifactKind::Traffic)
                .and_then(|c| c.load(TRAFFIC_KIND, TRAFFIC_VERSION, &key))
                .and_then(|payload| decode_traffic(&payload, layer_count));
            (Some(key), preloaded)
        } else {
            (None, None)
        };
        let hit = preloaded.is_some();
        let traffic_outcome = if !share_traffic || store.cache_for(ArtifactKind::Traffic).is_none()
        {
            CacheOutcome::Disabled
        } else if hit {
            CacheOutcome::Hit
        } else {
            CacheOutcome::Miss
        };
        let store_key = if hit {
            None
        } else {
            key.filter(|_| store.cache_for(ArtifactKind::Traffic).is_some())
        };

        let state = Arc::new((
            Mutex::new(PipeState {
                built: (0..layer_count).map(|_| None).collect(),
                finished: false,
                encoded_outcome: if encoded_probe.is_some() {
                    CacheOutcome::Miss
                } else {
                    CacheOutcome::Disabled
                },
            }),
            Condvar::new(),
        ));
        let thread_state = Arc::clone(&state);
        let thread_workload = Arc::clone(workload);
        let build_all = move || {
            use crate::artifact::LayerDecoder;
            let _notify = NotifyOnStop(Arc::clone(&thread_state));
            let last = thread_workload.layers.len().checked_sub(1);
            let mut decoder = encoded_probe.as_ref().and_then(|(cache, key)| {
                let payload = cache.load(ENCODED_KIND, ENCODER_VERSION, key)?;
                let dims: Vec<_> = thread_workload.layers.iter().map(|l| l.neurons.dim()).collect();
                LayerDecoder::new(payload, &wanted, &dims)
            });
            for (idx, layer) in thread_workload.layers.iter().enumerate() {
                let view = layer.view();
                let arts = match decoder.as_mut().and_then(LayerDecoder::next_layer) {
                    Some(arts) => arts,
                    None => {
                        // No usable entry, or a mid-stream decode
                        // failure: drop the decoder (a failed stream
                        // must not misalign later layers) and encode
                        // fresh — bit-identical either way.
                        decoder = None;
                        build_layer_artifacts(&wanted, &view)
                    }
                };
                let traffic = match preloaded.as_ref().map(|t| &t[idx]) {
                    Some(table) => *table,
                    None if share_traffic => count_traffic(&lead, &view),
                    None => AccessCounters::new(),
                };
                let streamed = decoder.as_ref().is_some_and(LayerDecoder::fully_consumed);
                let (state, cv) = &*thread_state;
                let mut g = state.lock().unwrap_or_else(PoisonError::into_inner);
                g.built[idx] = Some((arts, traffic));
                if Some(idx) == last && encoded_probe.is_some() {
                    // Settled in the same critical section as the final
                    // layer: consumers that saw every layer read the
                    // disk's true answer, never a racing placeholder.
                    g.encoded_outcome =
                        if streamed { CacheOutcome::Hit } else { CacheOutcome::Miss };
                }
                drop(g);
                cv.notify_all();
            }
        };
        PipelinedBuild {
            state,
            // Deferred: the first consumer spawns the builder (see the
            // field's doc) — this call stays free of a runnable thread.
            launch: Mutex::new(Launch::Pending(Arc::new(build_all))),
            lead,
            share_traffic,
            layer_count,
            store_key,
            encoded_pending,
            traffic_outcome,
        }
    }
}

/// Whether an [`ArtifactPool::get_or_build`] answered from memory or
/// had to build — and, when it built, what each disk tier contributed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolOutcome {
    /// Served from the in-memory pool; no disk access, no build.
    Pooled,
    /// Built this call, resolving through the store's tiers.
    Built(StoreOutcomes),
}

impl PoolOutcome {
    /// `true` exactly when the answer came from the in-memory pool.
    pub fn pool_hit(&self) -> bool {
        matches!(self, PoolOutcome::Pooled)
    }
}

/// A bounded, most-recently-used in-memory pool of build-once
/// artifacts, keyed by workload identity (network, representation,
/// seed) plus the exact design-point set — the *batch-to-batch* reuse
/// layer of the serving path (DESIGN.md §10), and the top tier of the
/// pool → disk → generate resolution order: a miss here falls through
/// to the [`ArtifactStore`]'s on-disk tiers (§9, §15) before any
/// generation or encoding is paid for. The workload tensor and every
/// mask/schedule/traffic artifact are handed out as shared [`Arc`]s,
/// so a hit costs two pointer clones instead of a rebuild.
///
/// The pool is deliberately small (serving traffic concentrates on few
/// hot workloads; all six networks × both representations are 12
/// entries, so the serving path provisions 16) and drops
/// least-recently-used entries beyond capacity. Reuse never changes
/// results: the keyed workload is
/// bit-identical by the generator's determinism guarantee, and the
/// artifacts are immutable once built.
pub struct ArtifactPool {
    capacity: usize,
    entries: std::sync::Mutex<Vec<PoolEntry>>,
}

struct PoolEntry {
    network: pra_workloads::Network,
    repr: Representation,
    seed: u64,
    configs: Vec<PraConfig>,
    workload: Arc<NetworkWorkload>,
    shared: Arc<SharedEncodedNetwork>,
}

impl ArtifactPool {
    /// A pool holding at most `capacity` workload+artifact pairs.
    pub fn new(capacity: usize) -> Self {
        Self { capacity: capacity.max(1), entries: std::sync::Mutex::new(Vec::new()) }
    }

    /// Locks the entry list, recovering from poisoning. A worker that
    /// panicked while holding the lock cannot leave a half-mutated
    /// entry behind — entries are immutable `Arc` bundles and the list
    /// operations (`remove`/`insert`/`truncate`) never unwind midway —
    /// so the pool keeps serving instead of cascading the panic into
    /// every later batch. Defense in depth for the case a panicking
    /// *build* published something suspect anyway is [`Self::evict`],
    /// which the serve supervisor calls for the dead worker's key.
    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<PoolEntry>> {
        self.entries.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Pooled entries currently held.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// `true` when nothing is pooled yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A hit-only probe: the pooled workload and artifacts for the key,
    /// or `None` without building anything. Lets cheap consumers (e.g.
    /// a baselines-only batch that would never pay for an encode) still
    /// profit from artifacts a richer batch already built.
    pub fn lookup(
        &self,
        configs: &[PraConfig],
        network: pra_workloads::Network,
        repr: Representation,
        seed: u64,
    ) -> Option<(Arc<NetworkWorkload>, Arc<SharedEncodedNetwork>)> {
        let mut entries = self.lock();
        let idx = entries.iter().position(|e| {
            e.network == network && e.repr == repr && e.seed == seed && e.configs == configs
        })?;
        let entry = entries.remove(idx);
        let out = (Arc::clone(&entry.workload), Arc::clone(&entry.shared));
        entries.insert(0, entry);
        Some(out)
    }

    /// Returns the workload and shared artifacts for `(network, repr,
    /// seed)` under exactly `configs`, resolving pool → disk →
    /// generate: from the pool when present (marking the entry
    /// most-recently-used), otherwise built through `store` — the
    /// workload via [`ArtifactStore::workload`], the artifacts via
    /// [`SharedEncodedNetwork::from_workload_stored`] — and pooled.
    ///
    /// # Panics
    ///
    /// Panics if `configs` is empty (the shared build needs at least
    /// one design point).
    pub fn get_or_build(
        &self,
        configs: &[PraConfig],
        network: pra_workloads::Network,
        repr: Representation,
        seed: u64,
        store: &ArtifactStore,
    ) -> (Arc<NetworkWorkload>, Arc<SharedEncodedNetwork>, PoolOutcome) {
        assert!(!configs.is_empty(), "ArtifactPool needs at least one configuration");
        if let Some((workload, shared)) = self.lookup(configs, network, repr, seed) {
            return (workload, shared, PoolOutcome::Pooled);
        }
        // Build outside the lock: a slow build must not serialize other
        // workers' pool hits (two racing builders of one key waste one
        // build, which is benign — last insert wins).
        let (workload, _) = store.workload(network, repr, seed);
        let workload = Arc::new(workload);
        let (shared, outcomes) =
            SharedEncodedNetwork::from_workload_stored(configs, &workload, seed, store);
        let shared = Arc::new(shared);
        let mut entries = self.lock();
        entries.insert(
            0,
            PoolEntry {
                network,
                repr,
                seed,
                configs: configs.to_vec(),
                workload: Arc::clone(&workload),
                shared: Arc::clone(&shared),
            },
        );
        entries.truncate(self.capacity);
        (workload, shared, PoolOutcome::Built(outcomes))
    }

    /// Pools artifacts that were built *outside* the pool — the
    /// pipelined serve path builds its [`SharedEncodedNetwork`]
    /// layer-by-layer via [`PipelinedBuild`] and publishes the
    /// assembled result here, so the next batch over the same key is a
    /// plain [`ArtifactPool::lookup`] hit. Semantics match the build
    /// tail of [`ArtifactPool::get_or_build`]: insert most-recently-
    /// used, evict beyond capacity, last racing insert wins.
    pub fn insert(
        &self,
        network: pra_workloads::Network,
        repr: Representation,
        seed: u64,
        configs: &[PraConfig],
        workload: Arc<NetworkWorkload>,
        shared: Arc<SharedEncodedNetwork>,
    ) {
        let mut entries = self.lock();
        entries.insert(
            0,
            PoolEntry { network, repr, seed, configs: configs.to_vec(), workload, shared },
        );
        entries.truncate(self.capacity);
    }

    /// Drops every pooled entry for `(network, repr, seed)`, whatever
    /// design-point set it was built under. The serve supervisor calls
    /// this after reclaiming a dead worker's batch: the pooled
    /// artifacts are immutable and *should* be sound, but a panic
    /// inside a build/simulate path costs one rebuild to rule out,
    /// while trusting a suspect entry could poison every later answer
    /// for that workload. Returns how many entries were dropped.
    pub fn evict(&self, network: pra_workloads::Network, repr: Representation, seed: u64) -> usize {
        let mut entries = self.lock();
        let before = entries.len();
        entries.retain(|e| !(e.network == network && e.repr == repr && e.seed == seed));
        before - entries.len()
    }
}

/// `true` when every configuration sees the same traffic view (chip,
/// NM layout, representation) — the single definition behind both the
/// build-time sharing decision and the cached-table eligibility, so
/// the two can never diverge if the view ever grows a field.
fn agree_on_traffic_view(configs: &[PraConfig]) -> bool {
    let lead = configs[0];
    configs
        .iter()
        .all(|c| c.chip == lead.chip && c.nm_layout == lead.nm_layout && c.repr == lead.repr)
}

/// Compile-time fingerprint of the traffic-counting pipeline's sources
/// (this module, `shared_traffic` in pra-engines, the dispatcher/NM
/// model and counters in pra-sim), mixed into every traffic key: a
/// counting change that forgets the [`TRAFFIC_VERSION`] bump makes old
/// entries unreachable locally, matching the workload cache's
/// fail-closed behavior (CI's actions/cache key hashes the same
/// sources).
fn traffic_source_fingerprint() -> u64 {
    static FP: std::sync::OnceLock<u64> = std::sync::OnceLock::new();
    *FP.get_or_init(|| {
        let sources: [&str; 4] = [
            include_str!("shared.rs"),
            include_str!("../../engines/src/lib.rs"),
            include_str!("../../sim/src/dispatcher.rs"),
            include_str!("../../sim/src/neuron_memory.rs"),
        ];
        let mut h = 0u64;
        for s in sources {
            h = pra_workloads::cache::checksum64(s.as_bytes()) ^ h.rotate_left(9);
        }
        h
    })
}

/// Content-address of a network's shared traffic table: per-layer
/// geometry plus the full chip view. Traffic never depends on neuron
/// values or the workload seed, so one entry serves every seed and
/// every fidelity.
fn traffic_key(
    network_name: &str,
    layers: &[LayerView<'_>],
    chip: &ChipConfig,
    layout: NmLayout,
    repr: Representation,
) -> CacheKey {
    let mut h = KeyHasher::new("pra-traffic-v1");
    h.u32(TRAFFIC_VERSION);
    h.u64(traffic_source_fingerprint());
    h.str(network_name);
    h.u64(layers.len() as u64);
    for view in layers {
        h.conv_spec(view.spec);
    }
    for d in [
        chip.tiles,
        chip.filters_per_tile,
        chip.brick,
        chip.windows_per_pallet,
        chip.nm_bytes,
        chip.nm_row_bytes,
        chip.sb_bytes_per_tile,
    ] {
        h.u64(d as u64);
    }
    h.f64(chip.frequency_ghz);
    h.u32(match layout {
        NmLayout::PalletMajor => 0,
        NmLayout::RowMajor => 1,
    });
    h.u32(repr.bits());
    h.finish()
}

/// Serializes a per-layer traffic table: layer count, then the seven
/// [`AccessCounters`] fields per layer, all `u64` little-endian.
fn encode_traffic(table: &[AccessCounters]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + table.len() * 56);
    out.extend_from_slice(&(table.len() as u32).to_le_bytes());
    for c in table {
        for v in [
            c.nm_brick_reads,
            c.nm_row_activations,
            c.nm_brick_writes,
            c.sb_set_reads,
            c.terms,
            c.idle_lane_cycles,
            c.stall_cycles,
        ] {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
    out
}

/// Inverse of [`encode_traffic`]; `None` unless the payload holds
/// exactly `expected_layers` entries (a geometry change without a key
/// change would be a bug, but stale bytes must still fail closed).
fn decode_traffic(payload: &[u8], expected_layers: usize) -> Option<Vec<AccessCounters>> {
    if payload.len() < 4 {
        return None;
    }
    let n = u32::from_le_bytes(payload[..4].try_into().unwrap()) as usize;
    if n != expected_layers || payload.len() != 4 + n * 56 {
        return None;
    }
    let mut out = Vec::with_capacity(n);
    let mut vals = payload[4..].chunks_exact(8).map(|c| u64::from_le_bytes(c.try_into().unwrap()));
    for _ in 0..n {
        out.push(AccessCounters {
            nm_brick_reads: vals.next()?,
            nm_row_activations: vals.next()?,
            nm_brick_writes: vals.next()?,
            sb_set_reads: vals.next()?,
            terms: vals.next()?,
            idle_lane_cycles: vals.next()?,
            stall_cycles: vals.next()?,
        });
    }
    Some(out)
}

/// A two-layer toy workload for artifact tests (shared with
/// `crate::artifact`) — deterministic content, real geometry, no
/// generator run.
#[cfg(test)]
pub(crate) fn test_toy_workload() -> NetworkWorkload {
    use pra_fixed::PrecisionWindow;
    use pra_tensor::{ConvLayerSpec, Tensor3};
    let toy_layer = || {
        let spec = ConvLayerSpec::new("toy", (12, 6, 32), (3, 3), 32, 1, 1).unwrap();
        pra_workloads::LayerWorkload {
            neurons: Tensor3::from_fn(spec.input, |x, y, i| ((x * 31 + y * 7 + i) % 777) as u16),
            spec,
            window: PrecisionWindow::with_width(9, 2),
            stripes_precision: 9,
        }
    };
    NetworkWorkload {
        network: pra_workloads::Network::AlexNet,
        repr: Representation::Fixed16,
        model: pra_workloads::ActivationModel {
            zero_frac: 0.5,
            sigma: 0.1,
            suffix_density: 0.3,
            outlier_prob: 0.0,
            dense_prob: 0.05,
            heavy_share: 0.5,
        },
        layers: vec![toy_layer(), toy_layer()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Encoding;
    use pra_fixed::PrecisionWindow;
    use pra_tensor::{ConvLayerSpec, Tensor3};
    use pra_workloads::{LayerWorkload, Representation};

    fn toy_layer() -> LayerWorkload {
        let spec = ConvLayerSpec::new("toy", (12, 6, 32), (3, 3), 32, 1, 1).unwrap();
        LayerWorkload {
            neurons: Tensor3::from_fn(spec.input, |x, y, i| ((x * 31 + y * 7 + i) % 777) as u16),
            spec,
            window: PrecisionWindow::with_width(9, 2),
            stripes_precision: 9,
        }
    }

    fn toy_workload() -> NetworkWorkload {
        test_toy_workload()
    }

    /// A store over a fresh scratch directory (removed on drop misuse
    /// is fine: the names are per-test and per-process).
    fn scratch_store(tag: &str, kinds: &[ArtifactKind]) -> (std::path::PathBuf, ArtifactStore) {
        let dir = std::env::temp_dir().join(format!("pra-shared-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut store = ArtifactStore::new(&dir);
        for &kind in kinds {
            store = store.tier(kind);
        }
        (dir, store)
    }

    fn memless() -> ArtifactStore {
        ArtifactStore::at_default().no_disk()
    }

    #[test]
    fn equal_scheduler_configs_share_one_scheduler() {
        let layer = toy_layer();
        let configs = [
            PraConfig::two_stage(2, Representation::Fixed16),
            PraConfig::per_column(1, Representation::Fixed16),
            PraConfig::single_stage(Representation::Fixed16),
        ];
        let shared = SharedEncodedNetwork::build(&configs, &[layer.view()]);
        // PRA-2b and PRA-2b-1R agree on (key, scheduler): same Arc.
        let a = shared.scheduler(0, &configs[0]);
        let b = shared.scheduler(0, &configs[1]);
        assert!(Arc::ptr_eq(a, b), "equal scheduler configs must share the memo");
        // PRA-4b differs in L but shares the mask buffer.
        let c = shared.scheduler(0, &configs[2]);
        assert!(!Arc::ptr_eq(a, c));
        assert!(Arc::ptr_eq(a.encoded_arc(), c.encoded_arc()), "same key must share masks");
    }

    #[test]
    fn distinct_encodings_get_distinct_masks() {
        let layer = toy_layer();
        let csd = PraConfig {
            encoding: Encoding::Csd,
            ..PraConfig::two_stage(2, Representation::Fixed16)
        };
        let one = PraConfig::two_stage(2, Representation::Fixed16);
        let shared = SharedEncodedNetwork::build(&[one, csd], &[layer.view()]);
        let a = shared.scheduler(0, &one);
        let b = shared.scheduler(0, &csd);
        assert!(!Arc::ptr_eq(a.encoded_arc(), b.encoded_arc()));
    }

    #[test]
    fn traffic_shared_only_under_matching_chip_view() {
        let layer = toy_layer();
        let one = PraConfig::two_stage(2, Representation::Fixed16);
        let shared = SharedEncodedNetwork::build(&[one], &[layer.view()]);
        assert!(shared.traffic_for(0, &one).is_some());
        assert!(shared.traffic_view(&one.chip, one.nm_layout, one.repr).is_some());
        // A consumer whose chip view differs gets nothing — even though
        // its scheduler parameters match, it must count its own traffic.
        let row_major = PraConfig { nm_layout: NmLayout::RowMajor, ..one };
        let _ = shared.scheduler(0, &row_major); // schedules DO match
        assert!(shared.traffic_for(0, &row_major).is_none(), "layout ablation must not reuse");
        assert!(shared.traffic_view(&one.chip, NmLayout::RowMajor, one.repr).is_none());
        let quant = PraConfig::two_stage(2, Representation::Quant8);
        assert!(shared.traffic_for(0, &quant).is_none());
        let mixed = SharedEncodedNetwork::build(&[one, quant], &[layer.view()]);
        assert!(
            mixed.traffic_for(0, &one).is_none(),
            "mixed representations must not share traffic"
        );
    }

    #[test]
    fn traffic_round_trips_and_serves_warm_builds() {
        let table = vec![
            AccessCounters { nm_brick_reads: 3, terms: 9, ..Default::default() },
            AccessCounters { sb_set_reads: 7, stall_cycles: 1, ..Default::default() },
        ];
        let decoded = decode_traffic(&encode_traffic(&table), 2).expect("round trip");
        assert_eq!(decoded, table);
        assert!(decode_traffic(&encode_traffic(&table), 3).is_none(), "layer count checked");
        assert!(decode_traffic(&encode_traffic(&table)[..10], 2).is_none(), "truncation rejected");

        let (dir, store) = scratch_store("traffic", &[ArtifactKind::Traffic]);
        let workload = toy_workload();
        let configs = [PraConfig::two_stage(2, Representation::Fixed16)];
        let (cold, cold_out) =
            SharedEncodedNetwork::from_workload_stored(&configs, &workload, 0xA, &store);
        assert_eq!(cold_out.traffic, CacheOutcome::Miss, "first build must count traffic");
        assert_eq!(cold_out.encoded, CacheOutcome::Disabled, "encoded tier not enabled here");
        let (warm, warm_out) =
            SharedEncodedNetwork::from_workload_stored(&configs, &workload, 0xA, &store);
        assert_eq!(warm_out.traffic, CacheOutcome::Hit, "second build must load the table");
        let plain = SharedEncodedNetwork::from_workload(&configs, &workload);
        let chip = configs[0].chip;
        let (layout, repr) = (configs[0].nm_layout, configs[0].repr);
        assert_eq!(
            warm.traffic_view(&chip, layout, repr).expect("warm traffic"),
            plain.traffic_view(&chip, layout, repr).expect("plain traffic"),
            "cached traffic must be byte-identical to a fresh count"
        );
        assert_eq!(
            cold.traffic_view(&chip, layout, repr).unwrap(),
            warm.traffic_view(&chip, layout, repr).unwrap(),
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mixed_chip_views_skip_the_traffic_cache() {
        let (dir, store) = scratch_store("traffic-mixed", &[ArtifactKind::Traffic]);
        let workload = toy_workload();
        let one = PraConfig::two_stage(2, Representation::Fixed16);
        let row_major = PraConfig { nm_layout: NmLayout::RowMajor, ..one };
        let (built, out) =
            SharedEncodedNetwork::from_workload_stored(&[one, row_major], &workload, 0xA, &store);
        assert_eq!(
            out.traffic,
            CacheOutcome::Disabled,
            "disagreeing chip views have no shared table to cache"
        );
        assert!(built.traffic_for(0, &one).is_none());
        assert!(!dir.exists() || std::fs::read_dir(&dir).unwrap().next().is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn encoded_artifacts_round_trip_through_the_store() {
        let (dir, store) =
            scratch_store("encoded", &[ArtifactKind::Encoded, ArtifactKind::Traffic]);
        let workload = toy_workload();
        // Three design points, two distinct scheduler configs, one
        // encoding key — the real sweep's sharing shape.
        let configs = [
            PraConfig::two_stage(2, Representation::Fixed16),
            PraConfig::single_stage(Representation::Fixed16),
            PraConfig::per_column(1, Representation::Fixed16),
        ];
        let (cold, cold_out) =
            SharedEncodedNetwork::from_workload_stored(&configs, &workload, 0xE, &store);
        assert_eq!(cold_out.encoded, CacheOutcome::Miss);
        // Warm the memos the way a real run would, then publish.
        let cold_results: Vec<_> =
            configs.iter().map(|c| crate::run_shared(c, &workload, &cold)).collect();
        assert!(cold.publish_encoded(&store), "a missed build must publish");
        assert!(!cold.publish_encoded(&store), "publication is once-only");
        let (warm, warm_out) =
            SharedEncodedNetwork::from_workload_stored(&configs, &workload, 0xE, &store);
        assert_eq!(warm_out.encoded, CacheOutcome::Hit, "second build must load the entry");
        assert!(!warm.publish_encoded(&store), "a hit has nothing to publish");
        // The loaded artifacts reconstruct the sharing invariant …
        let a = warm.scheduler(0, &configs[0]);
        let b = warm.scheduler(0, &configs[2]);
        assert!(Arc::ptr_eq(a, b), "equal scheduler configs must share the memo after a load");
        let c = warm.scheduler(0, &configs[1]);
        assert!(Arc::ptr_eq(a.encoded_arc(), c.encoded_arc()), "same key must share masks");
        // … and produce bit-identical results.
        for (cfg, cold_result) in configs.iter().zip(&cold_results) {
            assert_eq!(
                &crate::run_shared(cfg, &workload, &warm),
                cold_result,
                "warm artifacts must be invisible in the results"
            );
        }
        // A different seed is a different entry (masks depend on values).
        let (_, other_seed) =
            SharedEncodedNetwork::from_workload_stored(&configs, &workload, 0xF, &store);
        assert_eq!(other_seed.encoded, CacheOutcome::Miss, "seed must separate encoded entries");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn pipelined_build_loads_and_publishes_the_encoded_entry() {
        let (dir, store) =
            scratch_store("encoded-pipe", &[ArtifactKind::Encoded, ArtifactKind::Traffic]);
        let workload = Arc::new(toy_workload());
        let configs = [PraConfig::two_stage(2, Representation::Fixed16)];
        let pipe = SharedEncodedNetwork::start_pipelined(&configs, &workload, 0xE, &store);
        let cold = pipe.finish(&store);
        // finish() published even with cold memos: the entry is valid,
        // its memo slots simply stay lazy.
        let (warm, out) =
            SharedEncodedNetwork::from_workload_stored(&configs, &workload, 0xE, &store);
        assert_eq!(out.encoded, CacheOutcome::Hit, "finish must have published");
        assert_eq!(out.traffic, CacheOutcome::Hit, "finish must have published traffic too");
        assert_eq!(
            crate::run_shared(&configs[0], &workload, &warm),
            crate::run_shared(&configs[0], &workload, &cold),
            "pipelined-published artifacts must be invisible in the results"
        );
        // And a warm pipelined start consumes the entry.
        let pipe = SharedEncodedNetwork::start_pipelined(&configs, &workload, 0xE, &store);
        let (sched, traffic) = pipe.artifacts(0, &configs[0]);
        assert!(traffic.is_some());
        let reloaded = pipe.finish(&store);
        assert!(Arc::ptr_eq(&sched, reloaded.scheduler(0, &configs[0])));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn artifact_pool_reuses_handles_across_batches() {
        let pool = ArtifactPool::new(2);
        let store = memless();
        let configs = [PraConfig::two_stage(2, Representation::Fixed16)];
        let net = pra_workloads::Network::AlexNet;
        let (w1, s1, out1) = pool.get_or_build(&configs, net, Representation::Fixed16, 0xA, &store);
        assert!(!out1.pool_hit(), "first batch builds");
        assert_eq!(
            out1,
            PoolOutcome::Built(StoreOutcomes {
                encoded: CacheOutcome::Disabled,
                traffic: CacheOutcome::Disabled,
            }),
            "a diskless store reports both tiers off"
        );
        let (w2, s2, out2) = pool.get_or_build(&configs, net, Representation::Fixed16, 0xA, &store);
        assert!(out2.pool_hit(), "second batch reuses");
        assert!(Arc::ptr_eq(&w1, &w2), "the workload handle is shared, not rebuilt");
        assert!(Arc::ptr_eq(&s1, &s2), "the artifact handle is shared, not rebuilt");
        // A different seed is a different workload: no reuse.
        let (_, s3, out3) = pool.get_or_build(&configs, net, Representation::Fixed16, 0xB, &store);
        assert!(!out3.pool_hit());
        assert!(!Arc::ptr_eq(&s1, &s3));
        // A different design-point set never borrows mismatched artifacts.
        let other = [PraConfig::single_stage(Representation::Fixed16)];
        assert!(pool.lookup(&other, net, Representation::Fixed16, 0xA).is_none());
        assert!(pool.lookup(&configs, net, Representation::Fixed16, 0xA).is_some());
    }

    #[test]
    fn artifact_pool_evicts_least_recently_used() {
        let pool = ArtifactPool::new(2);
        let store = memless();
        let configs = [PraConfig::two_stage(2, Representation::Fixed16)];
        let net = pra_workloads::Network::AlexNet;
        for seed in [1u64, 2, 3] {
            let (_, _, out) =
                pool.get_or_build(&configs, net, Representation::Fixed16, seed, &store);
            assert!(!out.pool_hit());
        }
        assert_eq!(pool.len(), 2, "capacity binds");
        // Seed 1 was least recently used and fell out; 2 and 3 remain.
        assert!(pool.lookup(&configs, net, Representation::Fixed16, 1).is_none());
        assert!(pool.lookup(&configs, net, Representation::Fixed16, 2).is_some());
        assert!(pool.lookup(&configs, net, Representation::Fixed16, 3).is_some());
        // The lookup refreshed seed 2: inserting a fourth entry now
        // evicts 3, not 2.
        assert!(pool.lookup(&configs, net, Representation::Fixed16, 2).is_some());
        let (_, _, out) = pool.get_or_build(&configs, net, Representation::Fixed16, 4, &store);
        assert!(!out.pool_hit());
        assert!(pool.lookup(&configs, net, Representation::Fixed16, 2).is_some());
        assert!(pool.lookup(&configs, net, Representation::Fixed16, 3).is_none());
    }

    #[test]
    fn pooled_artifacts_produce_identical_results() {
        let pool = ArtifactPool::new(4);
        let store = memless();
        let configs = [PraConfig::two_stage(2, Representation::Fixed16)
            .with_fidelity(crate::Fidelity::Sampled { max_pallets: 2 })];
        let net = pra_workloads::Network::AlexNet;
        let (w, s, _) = pool.get_or_build(&configs, net, Representation::Fixed16, 0xC, &store);
        let pooled = crate::run_shared(&configs[0], &w, &s);
        let direct =
            crate::run(&configs[0], &NetworkWorkload::build(net, Representation::Fixed16, 0xC));
        assert_eq!(pooled, direct, "pool reuse must be invisible in the results");
    }

    #[test]
    fn artifact_pool_survives_a_poisoned_lock_and_evicts_on_demand() {
        let pool = Arc::new(ArtifactPool::new(4));
        let store = memless();
        let configs = [PraConfig::two_stage(2, Representation::Fixed16)];
        let net = pra_workloads::Network::AlexNet;
        let (_, _, out) = pool.get_or_build(&configs, net, Representation::Fixed16, 0xA, &store);
        assert!(!out.pool_hit());
        // Poison the pool mutex the way a panicking worker would: die
        // while holding it mid-operation.
        let p2 = Arc::clone(&pool);
        let panicked = std::thread::spawn(move || {
            let _guard = p2.entries.lock().unwrap();
            panic!("injected: worker died holding the pool lock");
        })
        .join();
        assert!(panicked.is_err(), "the poisoning thread must have panicked");
        assert!(pool.entries.is_poisoned(), "the lock must actually be poisoned");
        // Every pool operation keeps working on the recovered state.
        assert_eq!(pool.len(), 1);
        assert!(pool.lookup(&configs, net, Representation::Fixed16, 0xA).is_some());
        let (_, _, out) = pool.get_or_build(&configs, net, Representation::Fixed16, 0xA, &store);
        assert!(out.pool_hit(), "the surviving entry still serves hits after recovery");
        // Supervisor-style eviction drops the suspect workload's entry
        // (and only that one), forcing the next batch to rebuild.
        let (_, _, _) = pool.get_or_build(&configs, net, Representation::Fixed16, 0xB, &store);
        assert_eq!(pool.evict(net, Representation::Fixed16, 0xA), 1);
        assert_eq!(pool.evict(net, Representation::Fixed16, 0xA), 0, "evict is idempotent");
        assert!(pool.lookup(&configs, net, Representation::Fixed16, 0xA).is_none());
        assert!(pool.lookup(&configs, net, Representation::Fixed16, 0xB).is_some());
        let (_, _, out) = pool.get_or_build(&configs, net, Representation::Fixed16, 0xA, &store);
        assert!(!out.pool_hit(), "an evicted entry rebuilds");
    }

    #[test]
    #[should_panic(expected = "not built for")]
    fn missing_configuration_panics() {
        let layer = toy_layer();
        let one = PraConfig::two_stage(2, Representation::Fixed16);
        let shared = SharedEncodedNetwork::build(&[one], &[layer.view()]);
        let _ = shared.scheduler(0, &PraConfig::single_stage(Representation::Fixed16));
    }
}
