//! Layer-scoped scheduling pipeline: encode once, schedule each brick
//! once.
//!
//! The naive simulator re-fetches and re-schedules the *same* input brick
//! once per overlapping convolution window — a K×K-fold duplication of the
//! most expensive inner loop (9× for 3×3 kernels, before counting the
//! window overlap along `x` inside a pallet). Two observations remove the
//! duplication entirely:
//!
//! 1. Trimming (§V-F) and term encoding (oneffset or CSD) are per-neuron
//!    and layer-uniform, so every neuron can be encoded **exactly once**
//!    into a flat mask buffer ([`EncodedLayer`]) instead of per fetch.
//! 2. A [`ColumnSchedule`] is a pure function of the brick's encoded
//!    masks and the [`SchedulerConfig`] — nothing else. Every window and
//!    pallet that touches an input brick therefore sees the *same*
//!    schedule, so one memo entry per brick ([`LayerScheduler`]) turns
//!    every repeat visit into an O(1) lookup.
//!
//! The memo is filled lazily with one atomic slot per brick: the packed
//! `(cycles, terms)` pair is deterministic, so racing writers under
//! pallet-level parallelism store identical values and the race is
//! benign — no locks anywhere on the hot path, and zero heap allocations
//! per brick step (both buffers are sized once per layer).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use pra_fixed::csd;
use pra_tensor::brick::BrickRef;
use pra_tensor::{Dim3, Tensor3, BRICK};

use crate::column::{schedule_brick_with, ColumnSchedule, SchedulerConfig};
use crate::config::{Encoding, EncodingKey, PraConfig};

/// The per-layer flat mask buffer: every neuron trimmed and encoded
/// exactly once, stored brick-contiguously (ragged channel tails are
/// zero-padded to whole bricks) so a brick's 16 lane masks are one
/// contiguous slice.
#[derive(Debug)]
pub struct EncodedLayer {
    dim: Dim3,
    bricks_deep: usize,
    masks: Vec<u32>,
}

impl EncodedLayer {
    /// Trims and encodes every neuron of `neurons` once, per `cfg`'s
    /// software-trim and encoding settings.
    pub fn new(
        cfg: &PraConfig,
        window: pra_fixed::PrecisionWindow,
        neurons: &Tensor3<u16>,
    ) -> Self {
        Self::with_key(cfg.encoding_key(), window, neurons)
    }

    /// [`EncodedLayer::new`] from the bare [`EncodingKey`] — the masks
    /// depend on nothing else of a design point, which is what lets
    /// [`crate::SharedEncodedNetwork`] share one buffer across every
    /// configuration that agrees on the key.
    pub fn with_key(
        key: EncodingKey,
        window: pra_fixed::PrecisionWindow,
        neurons: &Tensor3<u16>,
    ) -> Self {
        let dim = neurons.dim();
        let bricks_deep = dim.i.div_ceil(BRICK);
        let mut masks = vec![0u32; dim.x * dim.y * bricks_deep * BRICK];
        let encode = |v: u16| -> u32 {
            let v = if key.software_trim { window.trim(v) } else { v };
            match key.encoding {
                Encoding::Oneffset => u32::from(v),
                Encoding::Csd => csd::mask(v),
            }
        };
        for y in 0..dim.y {
            for x in 0..dim.x {
                for ib in 0..bricks_deep {
                    let vals = neurons.brick_padded(x as isize, y as isize, ib * BRICK);
                    let base = brick_index(dim, bricks_deep, x, y, ib) * BRICK;
                    for (slot, &v) in masks[base..base + BRICK].iter_mut().zip(&vals) {
                        *slot = encode(v);
                    }
                }
            }
        }
        Self { dim, bricks_deep, masks }
    }

    /// Rebuilds an encoded layer from deserialized parts (the persisted
    /// encoded-artifact tier, `crate::artifact`). Returns `None` unless
    /// `masks` has exactly the length the geometry implies — a stale or
    /// foreign payload must fail closed, never index out of bounds.
    pub(crate) fn from_parts(dim: Dim3, masks: Vec<u32>) -> Option<Self> {
        let bricks_deep = dim.i.div_ceil(BRICK);
        (masks.len() == dim.x * dim.y * bricks_deep * BRICK).then_some(Self {
            dim,
            bricks_deep,
            masks,
        })
    }

    /// The layer geometry the masks were encoded over.
    pub(crate) fn dim(&self) -> Dim3 {
        self.dim
    }

    /// The full flat mask buffer, brick-contiguous (serialization).
    pub(crate) fn masks(&self) -> &[u32] {
        &self.masks
    }

    /// The encoded masks of the brick at `(x, y, i0)` (`i0` in neurons,
    /// a multiple of [`BRICK`]).
    pub fn brick_masks(&self, x: usize, y: usize, i0: usize) -> &[u32; BRICK] {
        let base = brick_index(self.dim, self.bricks_deep, x, y, i0 / BRICK) * BRICK;
        self.masks[base..base + BRICK].try_into().expect("brick slice is BRICK long")
    }

    /// Number of whole bricks along the channel dimension.
    pub fn bricks_deep(&self) -> usize {
        self.bricks_deep
    }
}

#[inline]
fn brick_index(dim: Dim3, bricks_deep: usize, x: usize, y: usize, ib: usize) -> usize {
    (y * bricks_deep + ib) * dim.x + x
}

/// Sentinel marking a memo slot that has not been computed yet (a real
/// entry packs two `u32`s, so the high word can never be all-ones: a
/// brick's cycle count is bounded by the representation width).
const UNSET: u64 = u64::MAX;

#[inline]
fn pack(s: ColumnSchedule) -> u64 {
    (u64::from(s.cycles) << 32) | u64::from(s.terms)
}

#[inline]
fn unpack(packed: u64) -> (u32, u32) {
    ((packed >> 32) as u32, packed as u32)
}

/// The layer-scoped brick-schedule memo: encode-once masks plus one
/// lazily-filled atomic `(cycles, terms)` slot per input brick.
///
/// A brick's schedule is a pure function of `(masks, SchedulerConfig)`,
/// so the scheduler — memo included — is shareable across design points
/// that agree on those two (they may differ in synchronization policy,
/// fidelity or chip structure); [`crate::SharedEncodedNetwork`] exploits
/// exactly this. The mask buffer is held behind an [`Arc`] so schedulers
/// with different `SchedulerConfig`s still share one encoding.
#[derive(Debug)]
pub struct LayerScheduler {
    encoded: Arc<EncodedLayer>,
    memo: Vec<AtomicU64>,
    scheduler: SchedulerConfig,
    per_cycle: u32,
}

impl LayerScheduler {
    /// Builds the pipeline for one layer: O(layer volume) encoding now,
    /// O(1) per brick visit afterwards.
    pub fn new(
        cfg: &PraConfig,
        window: pra_fixed::PrecisionWindow,
        neurons: &Tensor3<u16>,
    ) -> Self {
        Self::with_encoded(Arc::new(EncodedLayer::new(cfg, window, neurons)), cfg.scheduler())
    }

    /// Builds the memo over an already-encoded (possibly shared) mask
    /// buffer.
    pub fn with_encoded(encoded: Arc<EncodedLayer>, scheduler: SchedulerConfig) -> Self {
        let bricks = encoded.dim.x * encoded.dim.y * encoded.bricks_deep;
        let memo = (0..bricks).map(|_| AtomicU64::new(UNSET)).collect();
        Self { encoded, memo, scheduler, per_cycle: u32::from(scheduler.per_cycle) }
    }

    /// [`LayerScheduler::with_encoded`] with a deserialized warm memo
    /// (the persisted encoded-artifact tier): slots holding [`UNSET`]
    /// stay lazy, everything else is an O(1) hit from the first visit.
    /// Returns `None` unless `memo` has exactly one slot per brick —
    /// a stale payload must fail closed. The memo's packed values are a
    /// pure function of `(masks, scheduler)`, so a warm memo can never
    /// change a result, only skip recomputing it.
    pub(crate) fn with_encoded_memo(
        encoded: Arc<EncodedLayer>,
        scheduler: SchedulerConfig,
        memo: Vec<u64>,
    ) -> Option<Self> {
        let bricks = encoded.dim.x * encoded.dim.y * encoded.bricks_deep;
        if memo.len() != bricks {
            return None;
        }
        let memo = memo.into_iter().map(AtomicU64::new).collect();
        Some(Self { encoded, memo, scheduler, per_cycle: u32::from(scheduler.per_cycle) })
    }

    /// A plain snapshot of the memo table for serialization (unvisited
    /// slots read as [`UNSET`] and deserialize back to lazy slots).
    pub(crate) fn memo_snapshot(&self) -> Vec<u64> {
        // relaxed-ok: each slot is a self-contained packed u64 filled
        // with a deterministic value; see `brick_cycles_terms`.
        self.memo.iter().map(|s| s.load(Ordering::Relaxed)).collect()
    }

    /// The shared handle to the encode-once mask buffer.
    pub fn encoded_arc(&self) -> &Arc<EncodedLayer> {
        &self.encoded
    }

    /// The `(cycles, terms)` of the column schedule for the brick at `b`.
    /// Padding bricks (out-of-bounds coordinates, spatial or depth) are
    /// all zeros and cost nothing, mirroring `Tensor3::brick_padded`.
    /// In-bounds bricks are scheduled on first visit and memoized; the
    /// schedule is a pure function of the brick's values and the
    /// scheduler configuration, so concurrent fills race benignly.
    #[inline]
    pub fn brick_cycles_terms(&self, b: BrickRef) -> (u32, u32) {
        let dim = self.encoded.dim;
        if b.x < 0 || b.y < 0 || b.x as usize >= dim.x || b.y as usize >= dim.y || b.i >= dim.i {
            return (0, 0);
        }
        let (x, y) = (b.x as usize, b.y as usize);
        let idx = brick_index(dim, self.encoded.bricks_deep, x, y, b.i / BRICK);
        // relaxed-ok: the memo slot is a self-contained packed u64;
        // racing writers all store the same deterministic value, so no
        // ordering edge to other memory is needed (benign race).
        let cached = self.memo[idx].load(Ordering::Relaxed);
        if cached != UNSET {
            return unpack(cached);
        }
        let sched = schedule_brick_with(self.encoded.brick_masks(x, y, b.i), self.scheduler);
        // relaxed-ok: see the load above — same benign-race argument.
        self.memo[idx].store(pack(sched), Ordering::Relaxed);
        (sched.cycles, sched.terms)
    }

    /// Reconstructs the full [`ColumnSchedule`] for the brick at `b`
    /// (`idle_lane_cycles` is derivable from cycles and terms).
    pub fn brick_schedule(&self, b: BrickRef) -> ColumnSchedule {
        let (cycles, terms) = self.brick_cycles_terms(b);
        ColumnSchedule { cycles, terms, idle_lane_cycles: cycles * 16 * self.per_cycle - terms }
    }

    /// The underlying encode-once mask buffer.
    pub fn encoded(&self) -> &EncodedLayer {
        &self.encoded
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::csd_mask;
    use pra_fixed::PrecisionWindow;
    use pra_workloads::Representation;

    fn neurons(dim: (usize, usize, usize)) -> Tensor3<u16> {
        Tensor3::from_fn(dim, |x, y, i| ((x * 31 + y * 17 + i * 13) % 1023) as u16)
    }

    #[test]
    fn encoded_masks_match_per_fetch_encoding() {
        let n = neurons((5, 4, 24)); // ragged depth: 24 = 1.5 bricks
        let window = PrecisionWindow::with_width(9, 2);
        for encoding in [Encoding::Oneffset, Encoding::Csd] {
            for trim in [true, false] {
                let cfg = PraConfig {
                    encoding,
                    ..PraConfig::two_stage(2, Representation::Fixed16).with_trim(trim)
                };
                let enc = EncodedLayer::new(&cfg, window, &n);
                for (x, y, i0) in [(0usize, 0usize, 0usize), (4, 3, 16), (2, 1, 0)] {
                    let got = enc.brick_masks(x, y, i0);
                    let vals = n.brick_padded(x as isize, y as isize, i0);
                    for (lane, (&m, &v)) in got.iter().zip(&vals).enumerate() {
                        let v = if trim { window.trim(v) } else { v };
                        let want = match encoding {
                            Encoding::Oneffset => u32::from(v),
                            Encoding::Csd => csd_mask(v),
                        };
                        assert_eq!(m, want, "lane {lane} at ({x},{y},{i0})");
                    }
                }
            }
        }
    }

    #[test]
    fn memo_matches_direct_schedule_and_padding_is_free() {
        let n = neurons((6, 3, 32));
        let cfg = PraConfig::two_stage(2, Representation::Fixed16);
        let window = PrecisionWindow::with_width(9, 2);
        let sched = LayerScheduler::new(&cfg, window, &n);
        for b in [
            BrickRef { x: 0, y: 0, i: 0 },
            BrickRef { x: 5, y: 2, i: 16 },
            BrickRef { x: 3, y: 1, i: 0 },
        ] {
            let direct = schedule_brick_with(
                sched.encoded().brick_masks(b.x as usize, b.y as usize, b.i),
                cfg.scheduler(),
            );
            // First visit computes, second hits the memo: identical.
            assert_eq!(sched.brick_schedule(b), direct);
            assert_eq!(sched.brick_schedule(b), direct);
        }
        assert_eq!(sched.brick_cycles_terms(BrickRef { x: -1, y: 0, i: 0 }), (0, 0));
        assert_eq!(sched.brick_cycles_terms(BrickRef { x: 0, y: 99, i: 0 }), (0, 0));
    }
}
