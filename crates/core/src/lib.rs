//! Pragmatic (PRA) — the paper's contribution (§III, §V).
//!
//! Pragmatic processes only the essential (non-zero) bits of input neurons
//! by (1) converting neurons on-the-fly into explicit lists of powers of
//! two (*oneffsets*), (2) processing neurons bit-serially against
//! bit-parallel 16-bit synapses, (3) processing 16 windows (a pallet) per
//! tile concurrently so the worst case still matches DaDianNao, and
//! (4) rearranging shifts into two stages to shrink the datapath (§V-D).
//!
//! Module map:
//!
//! * [`config`] — [`PraConfig`]: first-stage shifter width `L`,
//!   synchronization policy, software trimming, representation, encoding,
//!   simulation fidelity.
//! * [`column`] — the per-column oneffset scheduler: the greedy
//!   minimum-oneffset rule of Fig. 7 that decides, each cycle, which lanes
//!   consume an oneffset and which stall.
//! * [`pip`] — the Pragmatic Inner Product unit datapath (Fig. 6): shift,
//!   negate, reduce, second-stage shift; used by the functional model.
//! * [`tile`] — a 16×16 PIP tile under per-pallet (§V-A4) or per-column
//!   (§V-E) synchronization with synapse set registers (SSRs).
//! * [`schedule`] — the layer-scoped scheduling pipeline: encode-once
//!   mask buffers and the brick-schedule memo the simulator's hot path
//!   runs on.
//! * [`artifact`] — the persisted encoded-artifact tier: serialization
//!   of mask buffers and warm schedule memos into the content-addressed
//!   store, keyed over encoding inputs, shared across fidelities.
//! * [`shared`] — build-once artifacts shared across design points:
//!   one encoding per [`EncodingKey`], one schedule memo per
//!   [`SchedulerConfig`], one traffic count per layer (the sweep's
//!   cross-config reuse).
//! * [`sim`] — layer- and network-level simulation producing
//!   [`pra_sim::RunResult`]s comparable with the baseline engines.
//! * [`functional`] — bit-exact computation of layer outputs through the
//!   oneffset datapath, verified against the reference convolution.
//!
//! Because every tile receives the same broadcast neuron pallet and the
//! columns of every tile stay in lock-step with the corresponding columns
//! of all other tiles, the chip's cycle count equals one tile's cycle
//! count times the number of filter groups; the simulator therefore models
//! one tile exactly and scales (the same argument the paper uses in
//! §V-A3).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact;
pub mod column;
pub mod config;
pub mod functional;
pub mod inference;
pub mod pip;
pub mod schedule;
pub mod shared;
pub mod sim;
pub mod tile;

pub use artifact::{ENCODED_KIND, ENCODER_VERSION};
pub use column::{ScanOrder, SchedulerConfig};
pub use config::{Encoding, EncodingKey, Fidelity, PraConfig, SyncPolicy};
pub use schedule::{EncodedLayer, LayerScheduler};
pub use shared::{
    ArtifactPool, PipelinedBuild, PoolOutcome, SharedEncodedNetwork, StoreOutcomes, TRAFFIC_KIND,
    TRAFFIC_VERSION,
};
pub use sim::{
    run, run_pipelined, run_shared, run_shared_streaming, simulate_layer, simulate_layer_raw,
    simulate_layer_shared, simulate_layer_view,
};
