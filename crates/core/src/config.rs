//! Pragmatic configuration: the design space explored in §VI.

use serde::{Deserialize, Serialize};

use pra_sim::{ChipConfig, NmLayout};
use pra_workloads::Representation;

use crate::column::{ScanOrder, SchedulerConfig};

/// Neuron-lane synchronization policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SyncPolicy {
    /// Pallet-level synchronization (§V-A4): all 256 lanes of a tile wait
    /// for the neuron with the most essential bits before the next brick
    /// step.
    PerPallet,
    /// Per-column synchronization (§V-E): each PIP column advances
    /// independently; one SB port and `ssrs` synapse set registers
    /// arbitrate synapse reuse.
    PerColumn {
        /// Number of synapse set registers in front of the SB.
        ssrs: usize,
    },
    /// Per-column with unbounded SSRs and no SB port conflicts — the
    /// `perCol-ideal` upper bound of Figs. 10 and 12.
    PerColumnIdeal,
}

impl std::fmt::Display for SyncPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SyncPolicy::PerPallet => f.write_str("perPall"),
            SyncPolicy::PerColumn { ssrs } => write!(f, "perCol-{ssrs}R"),
            SyncPolicy::PerColumnIdeal => f.write_str("perCol-ideal"),
        }
    }
}

/// Neuron term encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Encoding {
    /// Plain oneffsets — one term per essential bit (the paper's design).
    Oneffset,
    /// Canonical-signed-digit (modified Booth) recoding — the extension
    /// implied by the PIP's `neg` wires, evaluated as an ablation.
    Csd,
}

/// Simulation fidelity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Fidelity {
    /// Simulate every pallet of every layer.
    Full,
    /// Simulate at most this many pallets per layer, deterministically
    /// spaced, and scale cycles and counters to the full layer. Benches
    /// use this; results converge quickly because pallet statistics are
    /// stationary within a layer.
    Sampled {
        /// Upper bound on simulated pallets per layer.
        max_pallets: usize,
    },
}

/// The configuration slice that determines a layer's encoded mask buffer
/// (together with the layer's precision window): design points that agree
/// here see byte-identical [`crate::EncodedLayer`]s and can share one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct EncodingKey {
    /// Whether §V-F software trimming is applied before encoding.
    pub software_trim: bool,
    /// The term encoding.
    pub encoding: Encoding,
}

/// A complete Pragmatic design point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PraConfig {
    /// Shared chip structure (tiles, lanes, NM/SB geometry).
    pub chip: ChipConfig,
    /// First-stage synapse shifter control bits `L` (§V-D): lanes can
    /// absorb oneffset differences below `2^L` in one cycle. `L = 4`
    /// covers all 16 positions of a 16-bit neuron — the single-stage
    /// PRAsingle of §V-A/B.
    pub first_stage_bits: u8,
    /// Lane synchronization policy.
    pub sync: SyncPolicy,
    /// Whether software supplies per-layer precisions that trim prefix and
    /// suffix bits at the previous layer's output (§V-F). All evaluated
    /// configurations enable this; Table V measures its contribution.
    pub software_trim: bool,
    /// Neuron representation (16-bit fixed point or 8-bit quantized).
    pub repr: Representation,
    /// Term encoding (oneffsets, or CSD for the ablation).
    pub encoding: Encoding,
    /// Simulation fidelity.
    pub fidelity: Fidelity,
    /// Neuron Memory layout for dispatcher fetch modelling.
    pub nm_layout: NmLayout,
    /// Oneffset consumption order (LSB first per Fig. 7; MSB first per the
    /// literal §V-C leading-one detector — an ablation).
    pub scan_order: ScanOrder,
    /// Oneffsets per lane per cycle (1 in the paper's PIP; 2 models the
    /// throughput-boosted PIP extension with twice the shifters).
    pub oneffsets_per_cycle: u8,
}

impl PraConfig {
    /// The single-stage Pragmatic (PRAsingle / "4-bit") of §V-A–V-B with
    /// pallet synchronization.
    pub fn single_stage(repr: Representation) -> Self {
        Self::two_stage(4, repr)
    }

    /// A 2-stage shifting variant (§V-D) with `l` first-stage bits and
    /// pallet synchronization — "0-bit" through "4-bit" of Fig. 9.
    pub fn two_stage(l: u8, repr: Representation) -> Self {
        assert!(l <= 4, "first-stage shifter bits are 0..=4, got {l}");
        Self {
            chip: ChipConfig::dadn(),
            first_stage_bits: l,
            sync: SyncPolicy::PerPallet,
            software_trim: true,
            repr,
            encoding: Encoding::Oneffset,
            fidelity: Fidelity::Full,
            nm_layout: NmLayout::PalletMajor,
            scan_order: ScanOrder::LsbFirst,
            oneffsets_per_cycle: 1,
        }
    }

    /// PRA-2b with per-column synchronization and `ssrs` synapse set
    /// registers (the PRAxR-2b family of §VI-C).
    pub fn per_column(ssrs: usize, repr: Representation) -> Self {
        Self { sync: SyncPolicy::PerColumn { ssrs }, ..Self::two_stage(2, repr) }
    }

    /// Whether a second-stage shifter exists (it does not when the first
    /// stage already covers every bit position of the representation).
    pub fn is_single_stage(&self) -> bool {
        (1u32 << self.first_stage_bits) > u32::from(self.repr.max_pow())
    }

    /// The paper's label for this configuration, e.g. `"PRA-2b"` or
    /// `"PRA-2b-1R"`.
    pub fn label(&self) -> String {
        let mut base = format!("PRA-{}b", self.first_stage_bits);
        if self.oneffsets_per_cycle > 1 {
            base.push_str(&format!("-x{}", self.oneffsets_per_cycle));
        }
        let enc = match self.encoding {
            Encoding::Oneffset => "",
            Encoding::Csd => "-csd",
        };
        match self.sync {
            SyncPolicy::PerPallet => format!("{base}{enc}"),
            SyncPolicy::PerColumn { ssrs } => format!("{base}-{ssrs}R{enc}"),
            SyncPolicy::PerColumnIdeal => format!("{base}-idealR{enc}"),
        }
    }

    /// The mask-encoding settings implied by this configuration.
    pub fn encoding_key(&self) -> EncodingKey {
        EncodingKey { software_trim: self.software_trim, encoding: self.encoding }
    }

    /// The column-scheduler parameters implied by this configuration.
    pub fn scheduler(&self) -> SchedulerConfig {
        SchedulerConfig {
            l_bits: self.first_stage_bits,
            order: self.scan_order,
            per_cycle: self.oneffsets_per_cycle,
        }
    }

    /// Returns this configuration with sampled fidelity.
    pub fn with_fidelity(mut self, fidelity: Fidelity) -> Self {
        self.fidelity = fidelity;
        self
    }

    /// Returns this configuration with software trimming switched
    /// on or off.
    pub fn with_trim(mut self, trim: bool) -> Self {
        self.software_trim = trim;
        self
    }
}

impl Default for PraConfig {
    fn default() -> Self {
        Self::two_stage(2, Representation::Fixed16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_stage_detection() {
        assert!(PraConfig::single_stage(Representation::Fixed16).is_single_stage());
        assert!(!PraConfig::two_stage(2, Representation::Fixed16).is_single_stage());
        // For 8-bit neurons, L=3 already covers shifts 0..7.
        assert!(PraConfig::two_stage(3, Representation::Quant8).is_single_stage());
        assert!(!PraConfig::two_stage(2, Representation::Quant8).is_single_stage());
    }

    #[test]
    fn labels_match_paper_names() {
        assert_eq!(PraConfig::two_stage(2, Representation::Fixed16).label(), "PRA-2b");
        assert_eq!(PraConfig::per_column(1, Representation::Fixed16).label(), "PRA-2b-1R");
        let ideal = PraConfig {
            sync: SyncPolicy::PerColumnIdeal,
            ..PraConfig::two_stage(2, Representation::Fixed16)
        };
        assert_eq!(ideal.label(), "PRA-2b-idealR");
    }

    #[test]
    #[should_panic(expected = "0..=4")]
    fn l_bits_bounded() {
        let _ = PraConfig::two_stage(5, Representation::Fixed16);
    }

    #[test]
    fn defaults_enable_trimming() {
        assert!(PraConfig::default().software_trim);
        assert!(!PraConfig::default().with_trim(false).software_trim);
    }

    #[test]
    fn sync_display() {
        assert_eq!(SyncPolicy::PerPallet.to_string(), "perPall");
        assert_eq!(SyncPolicy::PerColumn { ssrs: 4 }.to_string(), "perCol-4R");
        assert_eq!(SyncPolicy::PerColumnIdeal.to_string(), "perCol-ideal");
    }
}
