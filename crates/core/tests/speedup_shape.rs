//! End-to-end speedup shape checks against the paper's headline numbers
//! (Figs. 9, 10, 12 and Table V). Exact paper-vs-measured rows are printed
//! by the bench targets; these tests pin the *shape*: who wins, by roughly
//! what factor, and the orderings that must hold.

use pra_core::{Fidelity, PraConfig, SyncPolicy};
use pra_engines::{dadn, stripes};
use pra_sim::{geomean, ChipConfig};
use pra_workloads::{Network, NetworkWorkload, Representation};

const SEED: u64 = 0x51AE;
const FIDELITY: Fidelity = Fidelity::Sampled { max_pallets: 48 };

fn speedups_for(repr: Representation, cfgs: &[PraConfig]) -> (Vec<f64>, Vec<Vec<f64>>) {
    let chip = ChipConfig::dadn();
    let mut stripes_all = vec![];
    let mut pra_all = vec![vec![]; cfgs.len()];
    for net in Network::ALL {
        let w = NetworkWorkload::build(net, repr, SEED);
        let base = dadn::run(&chip, &w);
        let s = stripes::run(&chip, &w);
        stripes_all.push(s.speedup_over(&base));
        for (k, cfg) in cfgs.iter().enumerate() {
            let r = pra_core::run(cfg, &w);
            pra_all[k].push(r.speedup_over(&base));
        }
    }
    (stripes_all, pra_all)
}

#[test]
fn fig9_pallet_sync_shape() {
    let cfgs: Vec<PraConfig> = (0..=4)
        .map(|l| PraConfig::two_stage(l, Representation::Fixed16).with_fidelity(FIDELITY))
        .collect();
    let (stripes, pra) = speedups_for(Representation::Fixed16, &cfgs);
    let sg = geomean(&stripes);
    let geos: Vec<f64> = pra.iter().map(|v| geomean(v)).collect();
    println!("stripes geo {sg:.2}; PRA 0b..4b geo {geos:?}");
    for (net, s) in Network::ALL.iter().zip(&stripes) {
        println!("  {net}: stripes {s:.2}");
    }
    for (net, s) in Network::ALL.iter().zip(&pra[4]) {
        println!("  {net}: PRA-4b {s:.2}");
    }

    // Paper: STR geo 1.85x; PRAsingle 2.59x; PRA-2b/3b within 0.2% of
    // single-stage; PRA-0b outperforms STR by ~20%.
    assert!((1.4..2.4).contains(&sg), "stripes geo {sg} vs paper 1.85");
    assert!((2.0..3.3).contains(&geos[4]), "PRA-4b geo {} vs paper 2.59", geos[4]);
    assert!(geos[4] > sg * 1.2, "PRA must clearly beat Stripes");
    // Monotone in L, and 2b close to single-stage.
    for k in 1..=4 {
        assert!(geos[k] >= geos[k - 1] * 0.999, "L={k} slower than L={}", k - 1);
    }
    assert!(geos[2] > geos[4] * 0.95, "PRA-2b within ~5% of single-stage");
    assert!(geos[0] > sg * 1.05, "PRA-0b should outperform Stripes");
}

#[test]
fn fig10_column_sync_shape() {
    let mk = |sync| PraConfig {
        sync,
        ..PraConfig::two_stage(2, Representation::Fixed16).with_fidelity(FIDELITY)
    };
    let cfgs = vec![
        mk(SyncPolicy::PerPallet),
        mk(SyncPolicy::PerColumn { ssrs: 1 }),
        mk(SyncPolicy::PerColumn { ssrs: 4 }),
        mk(SyncPolicy::PerColumn { ssrs: 16 }),
        mk(SyncPolicy::PerColumnIdeal),
    ];
    let (_, pra) = speedups_for(Representation::Fixed16, &cfgs);
    let geos: Vec<f64> = pra.iter().map(|v| geomean(v)).collect();
    println!(
        "pallet {:.2}, 1R {:.2}, 4R {:.2}, 16R {:.2}, ideal {:.2}",
        geos[0], geos[1], geos[2], geos[3], geos[4]
    );

    // Paper: PRA-2b pallet 2.59x; 1 SSR boosts to 3.1x, ideal 3.45x.
    assert!(geos[1] > geos[0] * 1.08, "column sync should clearly beat pallet sync");
    assert!((2.4..3.9).contains(&geos[1]), "PRA-2b-1R geo {} vs paper 3.1", geos[1]);
    assert!((2.6..4.2).contains(&geos[4]), "ideal geo {} vs paper 3.45", geos[4]);
    // More SSRs monotone, ideal at the top.
    assert!(geos[2] >= geos[1] * 0.999);
    assert!(geos[3] >= geos[2] * 0.999);
    assert!(geos[4] >= geos[3] * 0.999);
    // One SSR already captures most of the benefit (the paper's §VI-C
    // conclusion).
    assert!((geos[1] - geos[0]) / (geos[4] - geos[0]) > 0.5);
}

#[test]
fn table5_software_guidance_benefit() {
    let chip = ChipConfig::dadn();
    let mut benefits = vec![];
    for net in Network::ALL {
        let w = NetworkWorkload::build(net, Representation::Fixed16, SEED);
        let base = dadn::run(&chip, &w);
        let cfg = PraConfig::per_column(1, Representation::Fixed16).with_fidelity(FIDELITY);
        let with_trim = pra_core::run(&cfg, &w).speedup_over(&base);
        let without = pra_core::run(&cfg.with_trim(false), &w).speedup_over(&base);
        let benefit = with_trim / without - 1.0;
        println!("{net}: trim {with_trim:.2} no-trim {without:.2} benefit {benefit:.2}");
        benefits.push(benefit);
        // PRA outperforms the other architectures even without software
        // guidance (§VI-E conclusion 1).
        let str_speedup = stripes::run(&chip, &w).speedup_over(&base);
        assert!(without > str_speedup, "{net}: no-trim PRA {without} <= STR {str_speedup}");
    }
    let avg = benefits.iter().sum::<f64>() / benefits.len() as f64;
    println!("average software benefit {avg:.3} (paper: 0.19)");
    assert!((0.08..0.35).contains(&avg), "benefit {avg} vs paper 0.19");
}

#[test]
fn fig12_quantized_shape() {
    let mk = |l, sync| PraConfig {
        sync,
        ..PraConfig::two_stage(l, Representation::Quant8).with_fidelity(FIDELITY)
    };
    let cfgs = vec![
        mk(3, SyncPolicy::PerPallet),             // single-stage (8-bit)
        mk(2, SyncPolicy::PerPallet),             // perPall-2bit
        mk(2, SyncPolicy::PerColumn { ssrs: 1 }), // perCol-1reg-2bit
        mk(2, SyncPolicy::PerColumnIdeal),        // perCol-ideal-2bit
    ];
    let (stripes, pra) = speedups_for(Representation::Quant8, &cfgs);
    let sg = geomean(&stripes);
    let geos: Vec<f64> = pra.iter().map(|v| geomean(v)).collect();
    println!(
        "stripes8 {sg:.2}; perPall {:.2}, perPall-2b {:.2}, 1R-2b {:.2}, ideal-2b {:.2}",
        geos[0], geos[1], geos[2], geos[3]
    );

    // Paper: PRA benefits persist with 8-bit quantization; PRA-2b-1R is
    // nearly 3.5x over the 8-bit DaDN while Stripes barely helps (its
    // precisions clamp to <= 8 bits).
    assert!(sg < geos[0], "stripes8 {sg} should trail PRA");
    assert!((1.8..3.2).contains(&geos[1]), "perPall-2b {} vs paper ~2.5", geos[1]);
    assert!((2.4..4.2).contains(&geos[2]), "perCol-1R-2b {} vs paper ~3.5", geos[2]);
    assert!(geos[3] >= geos[2] * 0.999);
}
