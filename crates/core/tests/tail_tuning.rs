//! Tail-share tuning harness (run with `--ignored --nocapture`): sweeps
//! the heavy-tail `dense_prob` of the activation generator and reports the
//! resulting headline speedups, documenting how DENSE_PROB was fitted.

use pra_core::{Fidelity, PraConfig, SyncPolicy};
use pra_engines::{dadn, stripes};
use pra_sim::{geomean, ChipConfig};
use pra_workloads::calibrate::fit_model_with_tail;
use pra_workloads::{Network, NetworkWorkload, Representation};

#[test]
#[ignore]
fn sweep_dense_prob() {
    let chip = ChipConfig::dadn();
    let fidelity = Fidelity::Sampled { max_pallets: 32 };
    for (dense, heavy) in [
        (0.06, 1.0),
        (0.10, 0.4),
        (0.12, 0.35),
        (0.15, 0.3),
        (0.15, 0.2),
        (0.20, 0.25),
        (0.20, 0.15),
    ] {
        let mut strs = vec![];
        let mut p4 = vec![];
        let mut p2 = vec![];
        let mut p2_1r = vec![];
        let mut ideal = vec![];
        for net in Network::ALL {
            let model = fit_model_with_tail(net, Representation::Fixed16, dense, heavy);
            let w = NetworkWorkload::build_with_model(net, Representation::Fixed16, model, 0x51AE);
            let base = dadn::run(&chip, &w);
            strs.push(stripes::run(&chip, &w).speedup_over(&base));
            let mk = |cfg: PraConfig| {
                pra_core::run(&cfg.with_fidelity(fidelity), &w).speedup_over(&base)
            };
            p4.push(mk(PraConfig::single_stage(Representation::Fixed16)));
            p2.push(mk(PraConfig::two_stage(2, Representation::Fixed16)));
            p2_1r.push(mk(PraConfig::per_column(1, Representation::Fixed16)));
            ideal.push(mk(PraConfig {
                sync: SyncPolicy::PerColumnIdeal,
                ..PraConfig::two_stage(2, Representation::Fixed16)
            }));
        }
        println!(
            "dense={dense:.2} heavy={heavy:.2}: STR {:.2} | PRA-4b {:.2} | PRA-2b {:.2} | PRA-2b-1R {:.2} | ideal {:.2}  (paper: 1.85 / 2.59 / 2.59 / 3.10 / 3.45)",
            geomean(&strs),
            geomean(&p4),
            geomean(&p2),
            geomean(&p2_1r),
            geomean(&ideal),
        );
    }
}
