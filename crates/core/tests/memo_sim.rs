//! Cycle-for-cycle equivalence of the layer-scoped scheduling pipeline.
//!
//! The memoized simulator ([`pra_core::simulate_layer`]) must be
//! indistinguishable from the retained pre-memoization oracle
//! ([`pra_core::simulate_layer_raw`]) — not just in total cycles but in
//! every counter — across the design space: both encodings, trimming on
//! and off, every first-stage width, every synchronization policy, both
//! representations, ragged geometry and sampled fidelity. A separate test
//! pins the pallet-parallel invariant: parallel and serial simulation of
//! the same layer are bit-identical.

use pra_core::{simulate_layer, simulate_layer_raw, Encoding, Fidelity, PraConfig, SyncPolicy};
use pra_fixed::PrecisionWindow;
use pra_tensor::{ConvLayerSpec, Tensor3};
use pra_workloads::{LayerWorkload, Representation};

/// A layer with a ragged pallet row (out_x = 20) and mixed values.
fn toy_layer() -> LayerWorkload {
    let spec = ConvLayerSpec::new("toy", (20, 6, 32), (3, 3), 64, 1, 1).unwrap();
    LayerWorkload {
        neurons: Tensor3::from_fn(spec.input, |x, y, i| {
            ((x * 131 + y * 241 + i * 37) % 4093) as u16
        }),
        spec,
        window: PrecisionWindow::with_width(9, 2),
        stripes_precision: 9,
    }
}

/// Ragged channel depth (24 = 1.5 bricks) and stride 2.
fn ragged_layer() -> LayerWorkload {
    let spec = ConvLayerSpec::new("ragged", (22, 8, 24), (3, 3), 32, 2, 1).unwrap();
    LayerWorkload {
        neurons: Tensor3::from_fn(spec.input, |x, y, i| ((x * 7 + y * 911 + i * 5) % 600) as u16),
        spec,
        window: PrecisionWindow::with_width(11, 1),
        stripes_precision: 11,
    }
}

fn assert_identical(cfg: &PraConfig, layer: &LayerWorkload, what: &str) {
    let memoized = simulate_layer(cfg, layer);
    let raw = simulate_layer_raw(cfg, layer);
    assert_eq!(memoized, raw, "memoized != raw for {what}");
}

#[test]
fn memoized_equals_raw_across_l_and_trim() {
    let layer = toy_layer();
    for l in 0..=4 {
        for trim in [true, false] {
            let cfg = PraConfig::two_stage(l, Representation::Fixed16).with_trim(trim);
            assert_identical(&cfg, &layer, &format!("L={l} trim={trim}"));
        }
    }
}

#[test]
fn memoized_equals_raw_for_csd_encoding() {
    let layer = toy_layer();
    let cfg =
        PraConfig { encoding: Encoding::Csd, ..PraConfig::two_stage(2, Representation::Fixed16) };
    assert_identical(&cfg, &layer, "csd");
}

#[test]
fn memoized_equals_raw_across_sync_policies() {
    let layer = toy_layer();
    for sync in [
        SyncPolicy::PerPallet,
        SyncPolicy::PerColumn { ssrs: 1 },
        SyncPolicy::PerColumn { ssrs: 4 },
        SyncPolicy::PerColumnIdeal,
    ] {
        let cfg = PraConfig { sync, ..PraConfig::two_stage(2, Representation::Fixed16) };
        assert_identical(&cfg, &layer, &format!("{sync}"));
    }
}

#[test]
fn memoized_equals_raw_on_ragged_geometry_and_sampling() {
    let layer = ragged_layer();
    let cfg = PraConfig::two_stage(2, Representation::Fixed16);
    assert_identical(&cfg, &layer, "ragged full");
    let sampled = cfg.with_fidelity(Fidelity::Sampled { max_pallets: 3 });
    assert_identical(&sampled, &layer, "ragged sampled");
}

#[test]
fn memoized_equals_raw_for_quant8() {
    let spec = ConvLayerSpec::new("q8", (18, 5, 16), (3, 3), 32, 1, 1).unwrap();
    let layer = LayerWorkload {
        neurons: Tensor3::from_fn(spec.input, |x, y, i| ((x * 31 + y * 17 + i * 13) % 256) as u16),
        spec,
        window: PrecisionWindow::new(7, 0),
        stripes_precision: 8,
    };
    for l in [0u8, 2, 3] {
        let cfg = PraConfig::two_stage(l, Representation::Quant8);
        assert_identical(&cfg, &layer, &format!("quant8 L={l}"));
    }
}

#[test]
fn pallet_parallel_equals_serial() {
    // The pallet-parallel reduction is order-preserving, so the parallel
    // and serial paths must agree bit-for-bit — the same invariant the
    // sweep driver pins for its job rows.
    let layer = toy_layer();
    for sync in [SyncPolicy::PerPallet, SyncPolicy::PerColumn { ssrs: 2 }] {
        let cfg = PraConfig { sync, ..PraConfig::two_stage(2, Representation::Fixed16) };
        let parallel = pra_core::sim::simulate_layer_view_with(&cfg, layer.view(), true);
        let serial = pra_core::sim::simulate_layer_view_with(&cfg, layer.view(), false);
        assert_eq!(parallel, serial, "{sync}");
    }
}

#[test]
fn msb_first_ablation_still_identical() {
    // MSB-first takes the general scheduler path inside the memo; the
    // pipeline must stay exact there too.
    let layer = toy_layer();
    let cfg = PraConfig {
        scan_order: pra_core::ScanOrder::MsbFirst,
        ..PraConfig::two_stage(1, Representation::Fixed16)
    };
    assert_identical(&cfg, &layer, "msb-first");
}

#[test]
fn throughput_boosted_pip_still_identical() {
    let layer = toy_layer();
    let cfg =
        PraConfig { oneffsets_per_cycle: 2, ..PraConfig::two_stage(2, Representation::Fixed16) };
    assert_identical(&cfg, &layer, "x2 per cycle");
}
