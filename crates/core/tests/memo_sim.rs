//! Cycle-for-cycle equivalence of the layer-scoped scheduling pipeline.
//!
//! The memoized simulator ([`pra_core::simulate_layer`]) must be
//! indistinguishable from the retained pre-memoization oracle
//! ([`pra_core::simulate_layer_raw`]) — not just in total cycles but in
//! every counter — across the design space: both encodings, trimming on
//! and off, every first-stage width, every synchronization policy, both
//! representations, ragged geometry and sampled fidelity. A separate test
//! pins the pallet-parallel invariant: parallel and serial simulation of
//! the same layer are bit-identical.
//!
//! The same obligation holds one level up for the cross-config shared
//! artifacts: [`pra_core::run_shared`] against one
//! [`SharedEncodedNetwork`] must equal per-config [`pra_core::run`]
//! result-for-result across the grid of encodings, trim settings, sync
//! policies and representations the sweep mixes into one job.

use pra_core::{
    run, run_shared, simulate_layer, simulate_layer_raw, Encoding, Fidelity, PraConfig,
    SharedEncodedNetwork, SyncPolicy,
};
use pra_fixed::PrecisionWindow;
use pra_tensor::{ConvLayerSpec, Tensor3};
use pra_workloads::{ActivationModel, LayerWorkload, Network, NetworkWorkload, Representation};

/// A layer with a ragged pallet row (out_x = 20) and mixed values.
fn toy_layer() -> LayerWorkload {
    let spec = ConvLayerSpec::new("toy", (20, 6, 32), (3, 3), 64, 1, 1).unwrap();
    LayerWorkload {
        neurons: Tensor3::from_fn(spec.input, |x, y, i| {
            ((x * 131 + y * 241 + i * 37) % 4093) as u16
        }),
        spec,
        window: PrecisionWindow::with_width(9, 2),
        stripes_precision: 9,
    }
}

/// Ragged channel depth (24 = 1.5 bricks) and stride 2.
fn ragged_layer() -> LayerWorkload {
    let spec = ConvLayerSpec::new("ragged", (22, 8, 24), (3, 3), 32, 2, 1).unwrap();
    LayerWorkload {
        neurons: Tensor3::from_fn(spec.input, |x, y, i| ((x * 7 + y * 911 + i * 5) % 600) as u16),
        spec,
        window: PrecisionWindow::with_width(11, 1),
        stripes_precision: 11,
    }
}

fn assert_identical(cfg: &PraConfig, layer: &LayerWorkload, what: &str) {
    let memoized = simulate_layer(cfg, layer);
    let raw = simulate_layer_raw(cfg, layer);
    assert_eq!(memoized, raw, "memoized != raw for {what}");
}

#[test]
fn memoized_equals_raw_across_l_and_trim() {
    let layer = toy_layer();
    for l in 0..=4 {
        for trim in [true, false] {
            let cfg = PraConfig::two_stage(l, Representation::Fixed16).with_trim(trim);
            assert_identical(&cfg, &layer, &format!("L={l} trim={trim}"));
        }
    }
}

#[test]
fn memoized_equals_raw_for_csd_encoding() {
    let layer = toy_layer();
    let cfg =
        PraConfig { encoding: Encoding::Csd, ..PraConfig::two_stage(2, Representation::Fixed16) };
    assert_identical(&cfg, &layer, "csd");
}

#[test]
fn memoized_equals_raw_across_sync_policies() {
    let layer = toy_layer();
    for sync in [
        SyncPolicy::PerPallet,
        SyncPolicy::PerColumn { ssrs: 1 },
        SyncPolicy::PerColumn { ssrs: 4 },
        SyncPolicy::PerColumnIdeal,
    ] {
        let cfg = PraConfig { sync, ..PraConfig::two_stage(2, Representation::Fixed16) };
        assert_identical(&cfg, &layer, &format!("{sync}"));
    }
}

#[test]
fn memoized_equals_raw_on_ragged_geometry_and_sampling() {
    let layer = ragged_layer();
    let cfg = PraConfig::two_stage(2, Representation::Fixed16);
    assert_identical(&cfg, &layer, "ragged full");
    let sampled = cfg.with_fidelity(Fidelity::Sampled { max_pallets: 3 });
    assert_identical(&sampled, &layer, "ragged sampled");
}

#[test]
fn memoized_equals_raw_for_quant8() {
    let spec = ConvLayerSpec::new("q8", (18, 5, 16), (3, 3), 32, 1, 1).unwrap();
    let layer = LayerWorkload {
        neurons: Tensor3::from_fn(spec.input, |x, y, i| ((x * 31 + y * 17 + i * 13) % 256) as u16),
        spec,
        window: PrecisionWindow::new(7, 0),
        stripes_precision: 8,
    };
    for l in [0u8, 2, 3] {
        let cfg = PraConfig::two_stage(l, Representation::Quant8);
        assert_identical(&cfg, &layer, &format!("quant8 L={l}"));
    }
}

#[test]
fn pallet_parallel_equals_serial() {
    // The pallet-parallel reduction is order-preserving, so the parallel
    // and serial paths must agree bit-for-bit — the same invariant the
    // sweep driver pins for its job rows.
    let layer = toy_layer();
    for sync in [SyncPolicy::PerPallet, SyncPolicy::PerColumn { ssrs: 2 }] {
        let cfg = PraConfig { sync, ..PraConfig::two_stage(2, Representation::Fixed16) };
        let parallel = pra_core::sim::simulate_layer_view_with(&cfg, layer.view(), true);
        let serial = pra_core::sim::simulate_layer_view_with(&cfg, layer.view(), false);
        assert_eq!(parallel, serial, "{sync}");
    }
}

#[test]
fn msb_first_ablation_still_identical() {
    // MSB-first takes the general scheduler path inside the memo; the
    // pipeline must stay exact there too.
    let layer = toy_layer();
    let cfg = PraConfig {
        scan_order: pra_core::ScanOrder::MsbFirst,
        ..PraConfig::two_stage(1, Representation::Fixed16)
    };
    assert_identical(&cfg, &layer, "msb-first");
}

#[test]
fn throughput_boosted_pip_still_identical() {
    let layer = toy_layer();
    let cfg =
        PraConfig { oneffsets_per_cycle: 2, ..PraConfig::two_stage(2, Representation::Fixed16) };
    assert_identical(&cfg, &layer, "x2 per cycle");
}

/// A small two-layer workload with calibrated-looking values for the
/// cross-config grid (explicit model: no calibration fit in tests).
fn tiny_workload(repr: Representation) -> NetworkWorkload {
    let model = ActivationModel {
        zero_frac: 0.45,
        sigma: 0.12,
        suffix_density: 0.35,
        outlier_prob: 0.008,
        dense_prob: 0.10,
        heavy_share: 0.40,
    };
    let mut w = NetworkWorkload::build_with_model(Network::AlexNet, repr, model, 0x5AED);
    // Keep the two most irregular layers (ragged pallets, padding) and
    // shrink the rest away for test speed.
    w.layers.truncate(2);
    for layer in &mut w.layers {
        layer.spec.num_filters = layer.spec.num_filters.min(64);
    }
    w
}

fn assert_shared_equals_per_config(configs: &[PraConfig], w: &NetworkWorkload, what: &str) {
    let shared = SharedEncodedNetwork::from_workload(configs, w);
    for cfg in configs {
        let via_shared = run_shared(cfg, w, &shared);
        let per_config = run(cfg, w);
        assert_eq!(
            via_shared.layers,
            per_config.layers,
            "shared != per-config for {} ({what})",
            cfg.label()
        );
    }
}

#[test]
fn shared_equals_per_config_for_the_sweep_configs() {
    // The exact configuration mix every sweep job shares artifacts
    // across: PRA-2b and PRA-2b-1R share a schedule memo, PRA-4b only
    // the mask encoding.
    for repr in [Representation::Fixed16, Representation::Quant8] {
        let w = tiny_workload(repr);
        let configs = [
            PraConfig::two_stage(2, repr),
            PraConfig::single_stage(repr),
            PraConfig::per_column(1, repr),
        ];
        assert_shared_equals_per_config(&configs, &w, &format!("{repr}"));
    }
}

#[test]
fn shared_equals_per_config_across_encodings_and_trim() {
    // Mixed encoding keys in one shared network: every (encoding, trim)
    // combination must get its own masks and still match the unshared
    // path result-for-result.
    let w = tiny_workload(Representation::Fixed16);
    let mut configs = Vec::new();
    for encoding in [Encoding::Oneffset, Encoding::Csd] {
        for trim in [true, false] {
            configs.push(PraConfig {
                encoding,
                ..PraConfig::two_stage(2, Representation::Fixed16).with_trim(trim)
            });
        }
    }
    assert_shared_equals_per_config(&configs, &w, "encoding x trim grid");
}

#[test]
fn shared_equals_per_config_across_sync_and_fidelity() {
    // Sync policy and fidelity live outside the shared artifacts; a
    // memo warmed by one config must serve the others unchanged.
    let w = tiny_workload(Representation::Fixed16);
    let base = PraConfig::two_stage(2, Representation::Fixed16);
    let configs = [
        base,
        PraConfig { sync: SyncPolicy::PerColumn { ssrs: 4 }, ..base },
        PraConfig { sync: SyncPolicy::PerColumnIdeal, ..base },
        base.with_fidelity(Fidelity::Sampled { max_pallets: 5 }),
    ];
    assert_shared_equals_per_config(&configs, &w, "sync x fidelity");
}

#[test]
fn shared_equals_per_config_for_scan_order_and_throughput_ablations() {
    let w = tiny_workload(Representation::Fixed16);
    let base = PraConfig::two_stage(1, Representation::Fixed16);
    let configs = [
        base,
        PraConfig { scan_order: pra_core::ScanOrder::MsbFirst, ..base },
        PraConfig { oneffsets_per_cycle: 2, ..base },
    ];
    assert_shared_equals_per_config(&configs, &w, "scan order x per-cycle");
}
