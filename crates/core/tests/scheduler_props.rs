//! Property-based tests for the column scheduler and tile synchronization
//! — the components whose corner cases decide whether the worst-case
//! guarantee of §V-A3 actually holds.

use proptest::prelude::*;

use pra_core::column::{
    schedule_brick, schedule_brick_oracle, schedule_brick_with, ScanOrder, SchedulerConfig,
};
use pra_core::tile::{column_sync, pallet_sync};

fn arb_masks() -> impl Strategy<Value = [u32; 16]> {
    prop::array::uniform16(prop_oneof![
        3 => Just(0u32),
        5 => 0u32..=u16::MAX as u32,
        2 => Just(u16::MAX as u32),
    ])
}

proptest! {
    /// Terms always equal the total popcount, for any configuration.
    #[test]
    fn terms_conserved(masks in arb_masks(), l in 0u8..=4, per_cycle in 1u8..=3, msb in any::<bool>()) {
        let cfg = SchedulerConfig {
            l_bits: l,
            order: if msb { ScanOrder::MsbFirst } else { ScanOrder::LsbFirst },
            per_cycle,
        };
        let s = schedule_brick_with(&masks, cfg);
        let pop: u32 = masks.iter().map(|m| m.count_ones()).sum();
        prop_assert_eq!(s.terms, pop);
    }

    /// The dispatching entry point (branchless fast path for the paper
    /// configuration, general loop otherwise) equals the retained oracle
    /// for every configuration: random bricks, L ∈ 0..=4, both scan
    /// orders, 1..=3 oneffsets per cycle.
    #[test]
    fn fast_path_equals_oracle(
        masks in arb_masks(),
        l in 0u8..=4,
        msb in any::<bool>(),
        per_cycle in 1u8..=3,
    ) {
        let cfg = SchedulerConfig {
            l_bits: l,
            order: if msb { ScanOrder::MsbFirst } else { ScanOrder::LsbFirst },
            per_cycle,
        };
        prop_assert_eq!(schedule_brick_with(&masks, cfg), schedule_brick_oracle(&masks, cfg));
    }

    /// Cycles never exceed the number of distinct powers present — the
    /// §V-A3 worst-case bound (16 for 16-bit neurons).
    #[test]
    fn cycles_bounded_by_distinct_powers(masks in arb_masks(), l in 0u8..=4) {
        let union = masks.iter().fold(0u32, |a, &m| a | m);
        let s = schedule_brick(&masks, l);
        prop_assert!(s.cycles <= union.count_ones(), "{} > {}", s.cycles, union.count_ones());
    }

    /// Cycles are at least the maximum lane popcount divided by the
    /// per-cycle consumption (a lane can't finish faster than its queue).
    #[test]
    fn cycles_lower_bound(masks in arb_masks(), l in 0u8..=4, per_cycle in 1u8..=3) {
        let cfg = SchedulerConfig { l_bits: l, order: ScanOrder::LsbFirst, per_cycle };
        let s = schedule_brick_with(&masks, cfg);
        let worst = masks.iter().map(|m| m.count_ones()).max().unwrap();
        prop_assert!(s.cycles >= worst.div_ceil(u32::from(per_cycle)));
    }

    /// Lane order is irrelevant: the schedule depends on the multiset of
    /// power sets, not on which lane holds which neuron.
    #[test]
    fn lane_permutation_invariant(masks in arb_masks(), l in 0u8..=4, rot in 0usize..16) {
        let mut rotated = masks;
        rotated.rotate_left(rot);
        prop_assert_eq!(schedule_brick(&masks, l), schedule_brick(&rotated, l));
    }

    /// Mirror symmetry: LSB-first on the values equals MSB-first on the
    /// bit-reversed values — the two scan orders are the same hardware
    /// reflected.
    #[test]
    fn scan_orders_are_mirror_images(masks in arb_masks(), l in 0u8..=4) {
        let reversed: [u32; 16] = std::array::from_fn(|i| {
            (masks[i] as u16).reverse_bits() as u32
        });
        let lsb = schedule_brick_with(&masks, SchedulerConfig::paper(l));
        let msb = schedule_brick_with(
            &reversed,
            SchedulerConfig { l_bits: l, order: ScanOrder::MsbFirst, per_cycle: 1 },
        );
        prop_assert_eq!(lsb.cycles, msb.cycles);
        prop_assert_eq!(lsb.terms, msb.terms);
    }

    /// Pallet sync equals the sum of per-step column maxima (clamped to 1)
    /// when fetches are free.
    #[test]
    fn pallet_sync_is_sum_of_maxima(steps in prop::collection::vec(prop::array::uniform16(0u32..12), 1..10)) {
        let nmc = vec![0u64; steps.len()];
        let out = pallet_sync(&steps, &nmc);
        let expected: u64 = steps
            .iter()
            .map(|s| u64::from(*s.iter().max().unwrap()).max(1))
            .sum();
        prop_assert_eq!(out.cycles, expected);
    }

    /// Column sync with any SSR count is bounded below by the ideal
    /// (unbounded) case and above by strict lockstep plus serialization
    /// slack, and issues exactly one SB read per set.
    #[test]
    fn column_sync_bounds(
        steps in prop::collection::vec(prop::array::uniform16(0u32..10), 1..8),
        ssrs in 1usize..5,
        active in 1usize..=16,
    ) {
        let ideal = column_sync(&steps, active, None);
        let real = column_sync(&steps, active, Some(ssrs));
        prop_assert!(real.cycles >= ideal.cycles);
        let lockstep: u64 = steps
            .iter()
            .map(|s| u64::from(s[..active].iter().copied().max().unwrap_or(0)).max(1))
            .sum();
        // Lockstep plus at most one serialization cycle per step.
        prop_assert!(
            real.cycles <= lockstep + steps.len() as u64,
            "{} > lockstep {} + {}",
            real.cycles,
            lockstep,
            steps.len()
        );
        prop_assert_eq!(real.sb_set_reads, steps.len() as u64);
    }

    /// More SSRs never slow a pallet down.
    #[test]
    fn ssr_monotone(steps in prop::collection::vec(prop::array::uniform16(0u32..10), 1..8), active in 1usize..=16) {
        let mut prev = u64::MAX;
        for ssrs in [1usize, 2, 4, 8] {
            let c = column_sync(&steps, active, Some(ssrs)).cycles;
            prop_assert!(c <= prev);
            prev = c;
        }
    }
}
