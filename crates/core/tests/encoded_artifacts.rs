//! The encoded-artifact store tier (DESIGN.md §15), end to end through
//! the public API —
//!
//!  1. cross-fidelity sharing: the encoded key deliberately excludes
//!     [`Fidelity`], so a Sampled consumer loads the entry a Full build
//!     published and simulates bit-identically to a fresh build;
//!  2. fail-closed integrity: a corrupted or truncated entry is a miss,
//!     never a mangled deserialize, and the rebuild regenerates results
//!     byte-identical to the clean run;
//!  3. racing writers: N threads missing on one key all publish, and
//!     exactly one valid entry exists afterwards (atomic temp+rename).
//!
//! The toy workload mirrors `shared.rs`'s unit-test fixture: built from
//! public types only, deterministic content, real geometry, no
//! generator run.

use std::fs;
use std::path::{Path, PathBuf};

use pra_core::{run_shared, Fidelity, PraConfig, SharedEncodedNetwork};
use pra_fixed::PrecisionWindow;
use pra_tensor::{ConvLayerSpec, Tensor3};
use pra_workloads::cache::{ArtifactKind, ArtifactStore, CacheOutcome};
use pra_workloads::{ActivationModel, LayerWorkload, Network, NetworkWorkload, Representation};

/// Generator seed fed to the encoded key; the toy workload is
/// hand-built, so any pinned value works — it only has to be the same
/// on both sides of a probe.
const SEED: u64 = 0xF1D0;

fn toy_workload() -> NetworkWorkload {
    let toy_layer = || {
        let spec = ConvLayerSpec::new("toy", (12, 6, 32), (3, 3), 32, 1, 1).unwrap();
        LayerWorkload {
            neurons: Tensor3::from_fn(spec.input, |x, y, i| ((x * 31 + y * 7 + i) % 777) as u16),
            spec,
            window: PrecisionWindow::with_width(9, 2),
            stripes_precision: 9,
        }
    };
    NetworkWorkload {
        network: Network::AlexNet,
        repr: Representation::Fixed16,
        model: ActivationModel {
            zero_frac: 0.5,
            sigma: 0.1,
            suffix_density: 0.3,
            outlier_prob: 0.0,
            dense_prob: 0.05,
            heavy_share: 0.5,
        },
        layers: vec![toy_layer(), toy_layer()],
    }
}

/// The sweep's standard config trio at one fidelity. Fidelity is the
/// only axis varied across tests: the encoded key must not see it.
fn configs(fidelity: Fidelity) -> [PraConfig; 3] {
    [
        PraConfig::two_stage(2, Representation::Fixed16).with_fidelity(fidelity),
        PraConfig::single_stage(Representation::Fixed16).with_fidelity(fidelity),
        PraConfig::per_column(1, Representation::Fixed16).with_fidelity(fidelity),
    ]
}

/// A store over a fresh scratch directory with only the encoded tier
/// enabled (the workloads under test never touch the other tiers).
fn scratch_store(tag: &str) -> (PathBuf, ArtifactStore) {
    let dir =
        std::env::temp_dir().join(format!("pra-encoded-artifacts-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    let store = ArtifactStore::new(&dir).tier(ArtifactKind::Encoded);
    (dir, store)
}

/// Every file currently in `dir` (the scratch dirs hold nothing but
/// this test's entries, so listing doubles as a residue check).
fn dir_files(dir: &Path) -> Vec<String> {
    let mut names: Vec<String> = fs::read_dir(dir)
        .expect("scratch dir exists")
        .map(|e| e.expect("dir entry").file_name().to_string_lossy().into_owned())
        .collect();
    names.sort();
    names
}

/// The single `en-*.prac` entry the scratch dir must hold.
fn sole_encoded_entry(dir: &Path) -> PathBuf {
    let names = dir_files(dir);
    let entries: Vec<&String> =
        names.iter().filter(|n| n.starts_with("en-") && n.ends_with(".prac")).collect();
    assert_eq!(entries.len(), 1, "expected exactly one encoded entry, dir holds {names:?}");
    dir.join(entries[0])
}

fn run_all(
    cfgs: &[PraConfig],
    workload: &NetworkWorkload,
    shared: &SharedEncodedNetwork,
) -> Vec<pra_sim::RunResult> {
    cfgs.iter().map(|c| run_shared(c, workload, shared)).collect()
}

#[test]
fn sampled_runs_are_bit_identical_off_a_full_built_entry() {
    let (dir, store) = scratch_store("xfid");
    let workload = toy_workload();

    // Cold Full-fidelity build: miss, simulate (warming the memos the
    // entry will carry), publish once.
    let full = configs(Fidelity::Full);
    let (built, out) = SharedEncodedNetwork::from_workload_stored(&full, &workload, SEED, &store);
    assert_eq!(out.encoded, CacheOutcome::Miss, "fresh dir must miss");
    let _ = run_all(&full, &workload, &built);
    assert!(built.publish_encoded(&store), "armed miss must publish");
    assert!(!built.publish_encoded(&store), "second publish must no-op");
    let entry = sole_encoded_entry(&dir);

    // A Sampled consumer hits the Full-built entry (fidelity is not in
    // the key: Sampled visits a subset of Full's bricks)…
    let sampled = configs(Fidelity::Sampled { max_pallets: 1 });
    let (warm, out) = SharedEncodedNetwork::from_workload_stored(&sampled, &workload, SEED, &store);
    assert_eq!(out.encoded, CacheOutcome::Hit, "fidelity must not enter the encoded key");
    let warm_results = run_all(&sampled, &workload, &warm);

    // …and simulates bit-identically to a build that never saw disk.
    let fresh = SharedEncodedNetwork::from_workload(&sampled, &workload);
    assert_eq!(
        warm_results,
        run_all(&sampled, &workload, &fresh),
        "Sampled results must not depend on where the memos came from"
    );
    // The hit armed nothing, so the entry bytes are exactly as published.
    assert!(!warm.publish_encoded(&store), "a hit must not re-publish");
    assert!(entry.is_file(), "the shared entry must survive the warm load");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_or_truncated_entries_fall_back_bit_identically() {
    let (dir, store) = scratch_store("mangle");
    let workload = toy_workload();
    let cfgs = configs(Fidelity::Full);

    let (built, _) = SharedEncodedNetwork::from_workload_stored(&cfgs, &workload, SEED, &store);
    let clean = run_all(&cfgs, &workload, &built);
    assert!(built.publish_encoded(&store));
    let entry = sole_encoded_entry(&dir);
    let published = fs::read(&entry).expect("read published entry");

    // Flip one payload byte: the checksum trailer must reject the
    // entry, the probe reports a miss, and the rebuild matches clean.
    let mut flipped = published.clone();
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0x40;
    fs::write(&entry, &flipped).expect("plant corrupted entry");
    let (rebuilt, out) = SharedEncodedNetwork::from_workload_stored(&cfgs, &workload, SEED, &store);
    assert_eq!(out.encoded, CacheOutcome::Miss, "a corrupt entry must fail closed");
    assert_eq!(run_all(&cfgs, &workload, &rebuilt), clean, "rebuild must be bit-identical");
    // The armed publish replaces the bad entry with the same bytes the
    // first publish wrote (the encode is deterministic).
    let _ = run_all(&cfgs, &workload, &rebuilt);
    assert!(rebuilt.publish_encoded(&store));
    assert_eq!(
        fs::read(sole_encoded_entry(&dir)).expect("read republished entry"),
        published,
        "republished entry must be byte-identical to the original"
    );

    // Truncate to a third: same contract.
    let entry = sole_encoded_entry(&dir);
    fs::write(&entry, &published[..published.len() / 3]).expect("plant truncated entry");
    let (rebuilt, out) = SharedEncodedNetwork::from_workload_stored(&cfgs, &workload, SEED, &store);
    assert_eq!(out.encoded, CacheOutcome::Miss, "a truncated entry must fail closed");
    assert_eq!(run_all(&cfgs, &workload, &rebuilt), clean, "rebuild must be bit-identical");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn racing_writers_publish_exactly_one_valid_entry() {
    let (dir, store) = scratch_store("race");
    let workload = toy_workload();
    let cfgs = configs(Fidelity::Full);

    // Every thread misses cold (nobody published yet when the last
    // probe ran, or some interleaving thereof — all legal), simulates,
    // and publishes. Writes are temp+rename on one content address, so
    // order cannot matter.
    std::thread::scope(|scope| {
        for _ in 0..8 {
            scope.spawn(|| {
                let (built, _) =
                    SharedEncodedNetwork::from_workload_stored(&cfgs, &workload, SEED, &store);
                let _ = run_shared(&cfgs[0], &workload, &built);
                built.publish_encoded(&store);
            });
        }
    });

    // Exactly one entry, no temp residue…
    let entry = sole_encoded_entry(&dir);
    assert_eq!(
        dir_files(&dir),
        vec![entry.file_name().unwrap().to_string_lossy().into_owned()],
        "racing publications must leave no temp files behind"
    );
    // …and it is valid: a fresh probe hits and simulates identically to
    // a diskless build.
    let (warm, out) = SharedEncodedNetwork::from_workload_stored(&cfgs, &workload, SEED, &store);
    assert_eq!(out.encoded, CacheOutcome::Hit, "the surviving entry must load");
    let fresh = SharedEncodedNetwork::from_workload(&cfgs, &workload);
    assert_eq!(run_all(&cfgs, &workload, &warm), run_all(&cfgs, &workload, &fresh));
    let _ = fs::remove_dir_all(&dir);
}
